(* Tests for the static-analysis pass: one seeded defect per diagnostic
   code, the complexity advisor's Table 8.1/8.2 cells, and the
   advisor-driven dispatch (SP single-scan candidates, single-item
   fast path). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Diagnostic = Analysis.Diagnostic
module Advisor = Analysis.Advisor
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let r =
  Relation.of_int_rows (Schema.make "R" [ "a"; "b" ]) [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]

let s = Relation.of_int_rows (Schema.make "S" [ "a"; "b" ]) [ [ 2; 10 ]; [ 3; 20 ] ]
let u = Relation.of_int_rows (Schema.make "U" [ "a" ]) [ [ 1 ]; [ 2 ] ]
let db = Database.of_relations [ r; s; u ]
let fo str = Qlang.Query.Fo (Qlang.Parser.parse_query str)
let dl str = Qlang.Query.Dl (Qlang.Parser.parse_program str)
let diags qq = Analysis.Analyze.query ~db qq

(* [codes ~expect q] — the query's diagnostics carry [expect], and the
   severity split matches [errors]. *)
let has ~code ds = Diagnostic.by_code code ds <> []

let seeded ?(clean = false) name code qq =
  let ds = diags qq in
  check (name ^ ": " ^ code ^ " present") true (has ~code ds);
  check
    (name ^ ": error status")
    (not clean)
    (Diagnostic.has_errors ds)

(* ---------- safety (A00x) ---------- *)

let test_safety_codes () =
  (* head variable not range-restricted *)
  seeded "unsafe head" "A001" (fo "Q(x) := not U(x)");
  (* free body variable outside the head *)
  seeded "free body var" "A001" (fo "Q(x) := U(x) & U(y) | U(x)");
  (* unlimited existential: x constrained only by a comparison *)
  seeded ~clean:true "unlimited exists" "A002" (fo "Q(y) := U(y) & exists x. x != y");
  (* universal quantification *)
  seeded ~clean:true "forall" "A003" (fo "Q() := forall x. U(x)");
  (* negation *)
  seeded ~clean:true "negation" "A004" (fo "Q(x) := U(x) & not S(x, x)")

let test_safe_query_is_clean () =
  check "clean CQ" true (diags (fo "Q(x, z) := exists y. R(x, y) & S(y, z)") = []);
  check "equality propagates limits" true
    (diags (fo "Q(x, y) := U(x) & x = y") = []);
  check "empty query clean" true (diags Qlang.Query.Empty_query = []);
  check "identity over known relation" true (diags (Qlang.Query.Identity "R") = []);
  seeded "identity over unknown relation" "A010" (Qlang.Query.Identity "Zzz")

(* ---------- schema conformance (A01x) ---------- *)

let test_schema_codes () =
  seeded "unknown relation" "A010" (fo "Q(x) := Zzz(x)");
  seeded "arity mismatch" "A011" (fo "Q(x) := U(x, x)");
  seeded "type mismatch" "A012" (fo "Q(x, y) := R(x, y) & x = \"foo\"");
  seeded "incomparable constants" "A013" (fo "Q(x) := U(x) & 1 = \"a\"")

(* ---------- Datalog analysis (A02x) ---------- *)

let test_datalog_codes () =
  seeded "unstratifiable" "A020" (dl "P(x) :- R(x, y), not P(x).");
  seeded ~clean:true "unreachable IDB" "A021"
    (dl "P(x) :- R(x, y). Z(x) :- S(x, y). ?- P.");
  seeded "IDB/EDB collision" "A022" (dl "U(x) :- R(x, y). ?- U.");
  seeded "unknown EDB" "A023" (dl "P(x) :- Zzz(x, y). ?- P.");
  seeded "arity inconsistency" "A024" (dl "P(x) :- R(x, y). Q2(x) :- P(x, x). ?- Q2.");
  seeded "unsafe rule" "A025" (dl "P(x, z) :- R(x, y). ?- P.");
  seeded "no rule for answer" "A026" (dl "P(x) :- R(x, y). ?- Nope.");
  seeded ~clean:true "strata report" "A027" (dl "P(x) :- R(x, y). ?- P.")

let test_diagnostics_sorted () =
  (* errors come before warnings regardless of discovery order *)
  let ds = diags (fo "Q(x) := Zzz(y) & not U(x)") in
  check "has errors" true (Diagnostic.has_errors ds);
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
        Diagnostic.compare a b <= 0 && non_increasing rest
    | _ -> true
  in
  check "sorted by severity then code" true (non_increasing ds);
  check "ok on warnings only" true
    (Analysis.Analyze.ok (diags (fo "Q() := forall x. U(x)")));
  check "not ok on errors" false (Analysis.Analyze.ok ds)

(* ---------- stratified negation evaluation ---------- *)

let test_stratified_negation_eval () =
  (* C = U \ P where P = {x | R(2, x)} = {3}: needs two strata. *)
  let p =
    Qlang.Parser.parse_program "P(x) :- R(2, x). C(x) :- U(x), not P(x). ?- C."
  in
  check_int "two strata" 2
    (match Qlang.Datalog.strata_count p with Some n -> n | None -> -1);
  let ans = Qlang.Datalog.eval db p in
  check "complement through negation" true
    (Relation.equal ans
       (Relation.of_int_rows (Schema.make "C" [ "x" ]) [ [ 1 ]; [ 2 ] ]));
  check "analyzer accepts it" true (Analysis.Analyze.ok (Analysis.Analyze.program ~db p))

(* ---------- the complexity advisor ---------- *)

let cell_is (expected_cls, expected_cite) (c : Advisor.cell) name =
  check_str (name ^ " class") expected_cls c.Advisor.cls;
  check_str (name ^ " citation") expected_cite c.Advisor.cite

let test_advisor_combined () =
  let comb p ~lang ~compat = Advisor.combined p ~lang ~compat in
  cell_is ("Πᵖ₂-complete", "Theorem 4.1")
    (comb Advisor.Rpp ~lang:Qlang.Query.L_cq ~compat:true)
    "RPP CQ+Qc";
  cell_is ("DP-complete", "Theorem 4.5")
    (comb Advisor.Rpp ~lang:Qlang.Query.L_cq ~compat:false)
    "RPP CQ no Qc";
  (* SP/CQ/UCQ/∃FO⁺ share the CQ row *)
  cell_is ("Πᵖ₂-complete", "Theorem 4.1")
    (comb Advisor.Rpp ~lang:Qlang.Query.L_sp ~compat:true)
    "RPP SP";
  cell_is ("Πᵖ₂-complete", "Theorem 4.1")
    (comb Advisor.Rpp ~lang:Qlang.Query.L_efo_plus ~compat:true)
    "RPP ∃FO⁺";
  cell_is ("PSPACE-complete", "Theorem 4.1")
    (comb Advisor.Rpp ~lang:Qlang.Query.L_fo ~compat:true)
    "RPP FO";
  cell_is ("PSPACE-complete", "Theorem 4.1")
    (comb Advisor.Rpp ~lang:Qlang.Query.L_datalog_nr ~compat:false)
    "RPP DATALOGnr";
  cell_is ("EXPTIME-complete", "Theorem 4.1")
    (comb Advisor.Rpp ~lang:Qlang.Query.L_datalog ~compat:true)
    "RPP DATALOG";
  cell_is ("FP^Σᵖ₂-complete", "Theorem 5.1")
    (comb Advisor.Frp ~lang:Qlang.Query.L_cq ~compat:true)
    "FRP CQ+Qc";
  cell_is ("FPᴺᴾ-complete", "Theorem 5.1")
    (comb Advisor.Frp ~lang:Qlang.Query.L_cq ~compat:false)
    "FRP CQ no Qc";
  cell_is ("Dᵖ₂-complete", "Theorem 5.2")
    (comb Advisor.Mbp ~lang:Qlang.Query.L_ucq ~compat:true)
    "MBP UCQ+Qc";
  cell_is ("#·coNP-complete", "Theorem 5.3")
    (comb Advisor.Cpp ~lang:Qlang.Query.L_cq ~compat:true)
    "CPP CQ+Qc";
  cell_is ("#·NP-complete", "Theorem 5.3")
    (comb Advisor.Cpp ~lang:Qlang.Query.L_cq ~compat:false)
    "CPP CQ no Qc";
  cell_is ("Σᵖ₂-complete", "Theorem 7.2")
    (comb Advisor.Qrpp ~lang:Qlang.Query.L_cq ~compat:true)
    "QRPP CQ";
  cell_is ("Σᵖ₂-complete", "Theorem 8.1")
    (comb Advisor.Arpp ~lang:Qlang.Query.L_cq ~compat:true)
    "ARPP CQ";
  cell_is ("EXPTIME-complete", "Theorem 8.1")
    (comb Advisor.Arpp ~lang:Qlang.Query.L_datalog ~compat:true)
    "ARPP DATALOG"

let test_advisor_data () =
  let flags = Advisor.no_flags in
  cell_is ("coNP-complete", "Theorem 4.3") (Advisor.data Advisor.Rpp ~flags) "RPP data";
  cell_is ("DP-complete", "Theorem 5.2") (Advisor.data Advisor.Mbp ~flags) "MBP data";
  cell_is ("#·P-complete", "Theorem 5.3") (Advisor.data Advisor.Cpp ~flags) "CPP data";
  (* constant bound collapses decision problems to PTIME, functions to FP *)
  let cb = { Advisor.no_flags with Advisor.const_bound = true } in
  cell_is ("PTIME", "Corollary 6.1") (Advisor.data Advisor.Rpp ~flags:cb) "RPP const";
  cell_is ("FP", "Corollary 6.1") (Advisor.data Advisor.Frp ~flags:cb) "FRP const";
  cell_is ("FP", "Corollary 6.1") (Advisor.data Advisor.Cpp ~flags:cb) "CPP const";
  (* single items: QRPP collapses (Cor 7.3), ARPP does not (Cor 8.2) *)
  let items = { cb with Advisor.items = true } in
  cell_is ("PTIME", "Corollary 7.3") (Advisor.data Advisor.Qrpp ~flags:items) "QRPP items";
  cell_is ("NP-complete", "Corollary 8.2")
    (Advisor.data Advisor.Arpp ~flags:items)
    "ARPP items"

let test_problem_names () =
  check "round trip" true
    (List.for_all
       (fun p ->
         Advisor.problem_of_string (Advisor.problem_to_string p) = Some p)
       Advisor.all_problems);
  check "case-insensitive" true (Advisor.problem_of_string "rpp" = Some Advisor.Rpp);
  check "unknown" true (Advisor.problem_of_string "nope" = None)

(* ---------- candidate routing (Corollary 6.2 single scan) ---------- *)

let test_candidate_route () =
  let route ?has_dist qq = Advisor.candidate_route ~db ?has_dist qq in
  let is_scan = function Advisor.Sp_scan _ -> true | Advisor.Generic_eval -> false in
  check "SP query scans" true
    (is_scan (route (fo "Q(x) := exists y. R(x, y) & x < 3")));
  check "join does not" false (is_scan (route (fo "Q(x) := R(x, y) & S(y, z)")));
  check "unknown relation does not" false (is_scan (route (fo "Q(x) := Zzz(x)")));
  check "wrong arity does not" false (is_scan (route (fo "Q(x) := U(x, x)")));
  check "head var outside atom does not" false
    (is_scan (route (fo "Q(x, z) := exists y. R(x, y) & z = z")));
  (* Dist atoms route generically unless the caller vouches for the name *)
  let dq = fo "Q(x) := exists y. R(x, y) & dist[geo](x, y) <= 3" in
  check "dist without env" false (is_scan (route dq));
  check "dist with env" true
    (is_scan (route ~has_dist:(fun n -> n = "geo") dq));
  check "dist with wrong env" false
    (is_scan (route ~has_dist:(fun n -> n = "other") dq))

let test_sp_scan_agrees_with_generic () =
  (* Instance.candidates dispatches through the advisor; it must agree with
     the generic evaluator on SP and non-SP selections alike. *)
  let agree qq =
    let inst =
      Instance.make ~db ~select:qq ~cost:Rating.card_or_infinite
        ~value:Rating.count ~budget:10. ()
    in
    Relation.equal (Instance.candidates inst) (Qlang.Query.eval db qq)
  in
  check "SP selection" true (agree (fo "Q(x) := exists y. R(x, y) & x < 3"));
  check "SP with constant" true (agree (fo "Q(y) := R(2, y)"));
  check "CQ join selection" true (agree (fo "Q(x, z) := exists y. R(x, y) & S(y, z)"));
  check "identity" true (agree (Qlang.Query.Identity "R"))

(* ---------- dispatch: the single-item fast path ---------- *)

let items_db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "R" [ "id"; "score" ])
        [ [ 1; 5 ]; [ 2; 3 ]; [ 3; 8 ]; [ 4; 1 ] ];
    ]

let items_inst ?compat ?(cost = Rating.count) ?(budget = 1.) () =
  Instance.make ~db:items_db ~select:(Qlang.Query.Identity "R") ?compat ~cost
    ~value:(Rating.sum_col ~nonneg:true 1) ~budget
    ~size_bound:(Size_bound.Const 1) ()

let test_dispatch_route () =
  check "items path" true (Dispatch.route (items_inst ()) = Dispatch.Items_path);
  let with_compat =
    items_inst
      ~compat:(Instance.Compat_fn ("always", fun _ _ -> true))
      ()
  in
  check "compat forces const-bound path" true
    (Dispatch.route with_compat = Dispatch.Const_bound_path 1);
  let generic =
    Instance.make ~db:items_db ~select:(Qlang.Query.Identity "R")
      ~cost:Rating.count ~value:(Rating.sum_col ~nonneg:true 1) ~budget:2. ()
  in
  check "linear bound is generic" true (Dispatch.route generic = Dispatch.Generic_path);
  (* the advisor report reflects the instance flags *)
  let rep = Dispatch.report (items_inst ()) ~problem:Advisor.Frp in
  check "items flag" true rep.Advisor.flags.Advisor.items;
  check_str "FP via constant bound" "FP" rep.Advisor.data.Advisor.cls

let test_dispatch_agrees () =
  (* cost = |N|: the empty package is free, so it is a valid package too *)
  let inst = items_inst () in
  let vals pkgs = List.map (Rating.eval inst.Instance.value) pkgs in
  List.iter
    (fun k ->
      let fast = Dispatch.topk inst ~k and slow = Frp.enumerate inst ~k in
      check
        (Printf.sprintf "topk k=%d" k)
        true
        (match fast, slow with
        | None, None -> true
        | Some a, Some b -> vals a = vals b
        | _ -> false);
      check
        (Printf.sprintf "max_bound k=%d" k)
        true
        (Dispatch.max_bound inst ~k = Mbp.max_bound inst ~k))
    [ 1; 2; 3; 4; 5; 6 ];
  List.iter
    (fun bound ->
      check_int
        (Printf.sprintf "count bound=%g" bound)
        (Cpp.count inst ~bound)
        (Dispatch.count inst ~bound))
    [ 0.; 1.; 3.; 5.; 8.; 100. ];
  (* cost card_or_infinite excludes the empty package *)
  let inst2 = items_inst ~cost:Rating.card_or_infinite () in
  check "topk without empty" true
    (Dispatch.topk inst2 ~k:4 = Frp.enumerate inst2 ~k:4);
  check "k exceeding valid count" true
    (Dispatch.topk inst2 ~k:5 = None && Frp.enumerate inst2 ~k:5 = None);
  check_int "count without empty" (Cpp.count inst2 ~bound:0.)
    (Dispatch.count inst2 ~bound:0.)

let prop_dispatch_matches_solvers =
  QCheck.Test.make ~name:"items dispatch = generic solvers" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 2 + Random.State.int rng 5 in
      let rel =
        Relation.of_list (Schema.make "R" [ "id"; "w" ])
          (List.init rows (fun i ->
               Tuple.of_ints [ i; Random.State.int rng 6 ]))
      in
      let cost =
        if Random.State.bool rng then Rating.count else Rating.card_or_infinite
      in
      let inst =
        Instance.make
          ~db:(Database.of_relations [ rel ])
          ~select:(Qlang.Query.Identity "R") ~cost
          ~value:(Rating.sum_col ~nonneg:true 1)
          ~budget:(float_of_int (Random.State.int rng 3))
          ~size_bound:(Size_bound.Const 1) ()
      in
      let k = 1 + Random.State.int rng 4 in
      let bound = float_of_int (Random.State.int rng 7) in
      let vals = Option.map (List.map (Rating.eval inst.Instance.value)) in
      Dispatch.route inst = Dispatch.Items_path
      && vals (Dispatch.topk inst ~k) = vals (Frp.enumerate inst ~k)
      && Dispatch.max_bound inst ~k = Mbp.max_bound inst ~k
      && Dispatch.count inst ~bound = Cpp.count inst ~bound)

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "safety codes" `Quick test_safety_codes;
          Alcotest.test_case "safe queries are clean" `Quick test_safe_query_is_clean;
          Alcotest.test_case "schema codes" `Quick test_schema_codes;
          Alcotest.test_case "datalog codes" `Quick test_datalog_codes;
          Alcotest.test_case "sorted output" `Quick test_diagnostics_sorted;
          Alcotest.test_case "stratified negation eval" `Quick
            test_stratified_negation_eval;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "Table 8.1 cells" `Quick test_advisor_combined;
          Alcotest.test_case "Table 8.2 cells" `Quick test_advisor_data;
          Alcotest.test_case "problem names" `Quick test_problem_names;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "candidate routing" `Quick test_candidate_route;
          Alcotest.test_case "SP scan = generic eval" `Quick
            test_sp_scan_agrees_with_generic;
          Alcotest.test_case "route selection" `Quick test_dispatch_route;
          Alcotest.test_case "fast path agreement" `Quick test_dispatch_agrees;
          QCheck_alcotest.to_alcotest prop_dispatch_matches_solvers;
        ] );
    ]
