(* Differential tests for the {!Solvers.Bnb} kernel refactor: the SAT,
   MaxSAT and package-oracle searches were re-expressed as kernel
   instantiations, and these tests pin their answers (and for the oracle,
   the exact witness order) against independent reference implementations
   — brute force over all assignments, and a naive subset enumerator that
   never saw the kernel. *)

module Bnb = Solvers.Bnb
module Cnf = Solvers.Cnf
module Sat = Solvers.Sat
module Maxsat = Solvers.Maxsat
module Gen = Solvers.Gen
module Package = Core.Package
module Exist_pack = Core.Exist_pack
module Instance = Core.Instance
module Validity = Core.Validity
module Rating = Core.Rating
module Tuple = Relational.Tuple

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Trail ---------- *)

let test_trail_marks () =
  let log = ref [] in
  let tr = Bnb.Trail.create ~undo:(fun x -> log := x :: !log) () in
  let m0 = Bnb.Trail.mark tr in
  Bnb.Trail.push tr 1;
  Bnb.Trail.push tr 2;
  let m1 = Bnb.Trail.mark tr in
  Bnb.Trail.push tr 3;
  Bnb.Trail.push tr 4;
  (* Second-mark discipline: unwinding to the inner mark undoes only the
     entries pushed after it, most recent first. *)
  Bnb.Trail.undo_to tr m1;
  Alcotest.(check (list int)) "inner unwind order" [ 4; 3 ] (List.rev !log);
  Bnb.Trail.undo_to tr m1;
  Alcotest.(check (list int)) "unwind to current mark is a no-op" [ 4; 3 ]
    (List.rev !log);
  Bnb.Trail.undo_to tr m0;
  Alcotest.(check (list int)) "outer unwind order" [ 4; 3; 2; 1 ]
    (List.rev !log)

let test_trail_unwind_counter () =
  let c = Observe.counter "test.bnb_unwinds" in
  let was = Observe.enabled () in
  Observe.set_enabled true;
  Observe.reset ();
  Fun.protect ~finally:(fun () -> Observe.set_enabled was) @@ fun () ->
  let tr = Bnb.Trail.create ~unwinds:c ~undo:(fun _ -> ()) () in
  let m = Bnb.Trail.mark tr in
  Bnb.Trail.undo_to tr m;
  (* empty unwind: not counted *)
  Bnb.Trail.push tr 1;
  Bnb.Trail.push tr 2;
  Bnb.Trail.undo_to tr m;
  (* one real unwind popping two entries: counted once *)
  let n =
    match List.assoc_opt "test.bnb_unwinds" (Observe.snapshot ()) with
    | Some (Observe.Count n) -> n
    | _ -> -1
  in
  check_int "one bump per non-empty unwind" 1 n

(* ---------- Incumbent ---------- *)

let test_incumbent () =
  let improvements = ref [] in
  let inc =
    Bnb.Incumbent.create
      ~on_improve:(fun v x -> improvements := (v, x) :: !improvements)
      ()
  in
  check "empty value never prunes" true
    (Bnb.Incumbent.value inc = neg_infinity);
  Bnb.Incumbent.note inc 1.0 "a";
  Bnb.Incumbent.note inc 1.0 "b";
  (* tie: keeps the earlier witness *)
  Bnb.Incumbent.note inc 2.0 "c";
  Bnb.Incumbent.note inc 0.5 "d";
  (match Bnb.Incumbent.best inc with
  | Some (v, x) ->
      check "best value" true (v = 2.0);
      Alcotest.(check string) "best witness" "c" x
  | None -> Alcotest.fail "incumbent empty");
  Alcotest.(check (list string))
    "on_improve fired once per strict improvement" [ "a"; "c" ]
    (List.rev_map snd !improvements)

(* ---------- Make: a tiny knapsack space with a sound bound ---------- *)

(* 0/1 knapsack over items (value, weight), kernel bound = value so far +
   sum of remaining values (sound, loose).  The brute-force reference
   enumerates all subsets by mask. *)
let knapsack_brute items cap =
  let n = Array.length items in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let v = ref 0.0 and w = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        v := !v +. fst items.(i);
        w := !w + snd items.(i)
      end
    done;
    if !w <= cap && !v > !best then best := !v
  done;
  !best

let test_make_knapsack_diff () =
  let rng = Random.State.make [| 0xBEEF |] in
  for _ = 1 to 120 do
    let n = 1 + Random.State.int rng 8 in
    let items =
      Array.init n (fun _ ->
          (float_of_int (Random.State.int rng 20), 1 + Random.State.int rng 9))
    in
    let cap = 1 + Random.State.int rng 25 in
    let suffix = Array.make (n + 1) 0.0 in
    for i = n - 1 downto 0 do
      suffix.(i) <- suffix.(i + 1) +. fst items.(i)
    done;
    let module Space = struct
      type state = { i : int; value : float; weight : int }

      let tick = Bnb.Tick.make ~site:"bnb.test" ()

      let branches st =
        if st.i = n then []
        else
          let v, w = items.(st.i) in
          let take =
            if st.weight + w <= cap then
              [ { i = st.i + 1; value = st.value +. v; weight = st.weight + w } ]
            else []
          in
          take @ [ { st with i = st.i + 1 } ]

      let solution st = if st.i = n then Some st.value else None
      let bound st = st.value +. suffix.(st.i)
    end in
    let module Search = Bnb.Make (Space) in
    let got =
      match Search.maximize { Space.i = 0; value = 0.0; weight = 0 } with
      | Some (v, _) -> v
      | None -> neg_infinity
    in
    check "knapsack optimum = brute force" true (got = knapsack_brute items cap)
  done

(* ---------- SAT: kernel-trail solver vs assignment sweep ---------- *)

let prop_sat_matches_brute =
  QCheck.Test.make ~name:"Sat (Bnb.Trail): solve = brute-force satisfiability"
    ~count:120
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Gen.cnf3 rng ~nvars:5 ~nclauses:10 in
      let brute =
        Seq.exists (fun a -> Cnf.holds f a) (Cnf.assignments f.Cnf.nvars)
      in
      match Sat.solve f with
      | Some a -> brute && Cnf.holds f a
      | None -> not brute)

(* ---------- MaxSAT: kernel B&B vs brute force ---------- *)

let prop_maxsat_matches_brute =
  QCheck.Test.make ~name:"Maxsat (Bnb.Make): solve = brute force" ~count:120
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let mi = Gen.maxsat rng ~nvars:5 ~nclauses:8 ~max_weight:9 in
      let w, a = Maxsat.solve mi in
      w = Maxsat.brute_force mi && Maxsat.weight_of mi a = w)

(* ---------- Oracle: kernel Subset vs a naive reference enumerator ---------- *)

let random_inst seed =
  let rng = Random.State.make [| seed |] in
  let n = 3 + Random.State.int rng 5 in
  let rows = List.init n (fun i -> [ i + 1; 1 + Random.State.int rng 9 ]) in
  let db =
    Relational.Database.of_relations
      [
        Relational.Relation.of_int_rows
          (Relational.Schema.make "R" [ "id"; "score" ])
          rows;
      ]
  in
  let compat =
    if Random.State.bool rng then Instance.No_constraint
    else
      Instance.Compat_fn
        ( "score-cap",
          fun p _ ->
            List.fold_left
              (fun acc t ->
                acc + Relational.Value.int_exn (Tuple.get t 1))
              0 (Package.to_list p)
            <= 14 )
  in
  Instance.make ~db ~select:(Qlang.Query.Identity "R") ~compat
    ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget:(float_of_int (1 + Random.State.int rng 3))
    ()

(* Reference: every subset of Q(D) up to the size bound, by masks, sorted
   into the canonical DFS (prefix-lexicographic index) order independently
   of the kernel. *)
let reference_valid inst =
  let cands = Relational.Relation.to_array (Instance.candidates inst) in
  let n = Array.length cands in
  let max_size = Instance.max_package_size inst in
  let subsets = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let idxs = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
    if List.length idxs <= max_size then
      subsets := (idxs, List.fold_left (fun p i -> Package.add cands.(i) p) Package.empty idxs) :: !subsets
  done;
  let lex_le a b =
    let rec go = function
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: xs, y :: ys -> if x <> y then compare x y else go (xs, ys)
    in
    go (a, b)
  in
  !subsets
  |> List.filter (fun (_, p) ->
         Rating.eval inst.Instance.cost p <= inst.Instance.budget
         && Validity.compatible inst p)
  |> List.sort (fun (ia, _) (ib, _) -> lex_le ia ib)
  |> List.map snd

let prop_oracle_order_matches_reference =
  QCheck.Test.make
    ~name:"Exist_pack (Bnb.Subset): all_valid = reference order, both domains"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let inst = random_inst seed in
      let reference = reference_valid inst in
      let seq = Exist_pack.all_valid (Exist_pack.ctx ~domains:1 inst) in
      let par = Exist_pack.all_valid (Exist_pack.ctx ~domains:4 inst) in
      let same a b =
        List.length a = List.length b && List.for_all2 Package.equal a b
      in
      same seq reference && same par reference)

let prop_oracle_witness_matches_reference =
  QCheck.Test.make
    ~name:"Exist_pack (Bnb.Subset): search witness = first reference hit"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let inst = random_inst seed in
      let rng = Random.State.make [| seed lxor 0x5EED |] in
      let bound = float_of_int (Random.State.int rng 12) in
      let value = Rating.eval inst.Instance.value in
      let reference =
        List.find_opt (fun p -> value p >= bound) (reference_valid inst)
      in
      let got = Exist_pack.search (Exist_pack.ctx ~domains:1 inst) ~bound () in
      match (got, reference) with
      | None, None -> true
      | Some g, Some r -> Package.equal g r
      | _ -> false)

let () =
  Alcotest.run "bnb"
    [
      ( "kernel",
        [
          Alcotest.test_case "trail marks and unwind order" `Quick
            test_trail_marks;
          Alcotest.test_case "trail unwind counter bumps once" `Quick
            test_trail_unwind_counter;
          Alcotest.test_case "incumbent: strict improvement, tie keeps first"
            `Quick test_incumbent;
          Alcotest.test_case "Make: knapsack differential" `Quick
            test_make_knapsack_diff;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_sat_matches_brute;
          QCheck_alcotest.to_alcotest prop_maxsat_matches_brute;
          QCheck_alcotest.to_alcotest prop_oracle_order_matches_reference;
          QCheck_alcotest.to_alcotest prop_oracle_witness_matches_reference;
        ] );
    ]
