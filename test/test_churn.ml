(* Mutable-database churn: incremental maintenance of every derived
   structure under tuple insert/delete streams, revision-keyed cache and
   memo invalidation, and the three staleness regressions of the mutation
   layer:

   - a column value whose occurrence count reaches zero must lose its key
     (else distinct counts drift and skew join-order estimates);
   - add-then-remove of the same tuple (net no-op) must hit the original
     plan-cache and compat-memo entries, while a real mutation must never
     serve a stale verdict;
   - the 65th distinct value arriving on a bitmap-indexed column must
     invalidate past the ≤64-value bitmap limit instead of answering from
     a stale bitmap table.

   Every property cross-checks the incrementally maintained relation
   against a from-scratch rebuild of the same tuple set. *)

open Qlang
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Column = Relational.Column
module Bitmap = Relational.Bitmap
module Stats = Relational.Stats
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let counter_value name =
  match List.assoc_opt name (Observe.snapshot ()) with
  | Some (Observe.Count n) -> n
  | _ -> 0

let with_tracing f =
  let was = Observe.enabled () in
  Observe.set_enabled true;
  Observe.reset ();
  Fun.protect ~finally:(fun () -> Observe.set_enabled was) f

let q = Parser.parse_query
let p = Parser.parse_program
let pkg rows = Package.of_tuples (List.map Tuple.of_ints rows)

(* The from-scratch oracle: same tuple set, every cache rebuilt lazily. *)
let rebuild r = Relation.of_list (Relation.schema r) (Relation.to_list r)

let rebuild_db db = Database.of_relations (List.map rebuild (Database.relations db))

(* Force every derived structure so add/remove exercises maintenance
   rather than starting from a cold cache. *)
let force_caches r =
  ignore (Relation.to_array r);
  ignore (Relation.fast_mem r (Tuple.of_ints [ 0 ]));
  ignore (Relation.values r);
  ignore (Relation.columns r);
  ignore (Relation.col_counts r);
  ignore (Relation.index_on r 0);
  r

let force_db_caches db =
  List.iter (fun r -> ignore (force_caches r)) (Database.relations db);
  db

let counts_agree a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ta tb ->
         Hashtbl.length ta = Hashtbl.length tb
         && Hashtbl.fold (fun k n acc -> acc && Hashtbl.find_opt tb k = Some n) ta true)
       a b

(* ---------- regression: zero-count keys are deleted ---------- *)

let test_zero_count_key_deleted () =
  let sch = Schema.make "R" [ "a"; "b" ] in
  let rows = [ [ 1; 10 ]; [ 1; 20 ]; [ 2; 20 ] ] in
  (* Path 1: counts maintained through the columnar store. *)
  let r0 = force_caches (Relation.of_int_rows sch rows) in
  (* removing (2,20) drops a=2's count 1 -> 0: the key must go, not stay
     as a zero entry inflating the distinct count *)
  let r1 = Relation.remove (Tuple.of_ints [ 2; 20 ]) r0 in
  check "counts were maintained, not dropped" true (Relation.has_counts r1);
  let fresh = rebuild r1 in
  check "counts match a from-scratch rebuild" true
    (counts_agree (Relation.col_counts r1) (Relation.col_counts fresh));
  Array.iter
    (fun tbl ->
      Hashtbl.iter
        (fun _ n -> check "no zero-count key survives" true (n > 0))
        tbl)
    (Relation.col_counts r1);
  (* Path 2: counts built directly, without the columnar store. *)
  let r0' = Relation.of_int_rows sch rows in
  ignore (Relation.col_counts r0');
  let r1' = Relation.remove (Tuple.of_ints [ 2; 20 ]) r0' in
  check "bare-counts path also matches the rebuild" true
    (counts_agree (Relation.col_counts r1') (Relation.col_counts (rebuild r1')));
  (* The distinct counts feed selectivity: the estimates must agree. *)
  let s_inc = Stats.of_relation r1 and s_new = Stats.of_relation fresh in
  check "selectivity estimates match the rebuild" true
    (Stats.eq_selectivity s_inc 0 = Stats.eq_selectivity s_new 0
    && Stats.eq_selectivity s_inc 1 = Stats.eq_selectivity s_new 1);
  (* An emptied index bucket deletes its key the same way: probing the
     vanished value answers [] through the maintained index. *)
  check "maintained index forgets the vanished value" true
    (Relation.select_eq r1 0 (Value.Int 2) = [])

(* ---------- regression: the 65th distinct value on a bitmap column ---------- *)

let test_bitmap_65th_value () =
  let n = Column.max_bitmap_distinct in
  let sch = Schema.make "B" [ "k"; "flag" ] in
  let r0 =
    force_caches (Relation.of_int_rows sch (List.init n (fun i -> [ i; i mod 2 ])))
  in
  let c0 = Relation.columns r0 in
  check "boundary column has a bitmap" true (Column.has_bitmap c0 0);
  (* the (max+1)-th distinct value arrives incrementally *)
  let tup = Tuple.of_ints [ n; 1 ] in
  let r1 = Relation.add tup r0 in
  check "columns were maintained, not dropped" true (Relation.has_columns r1);
  let c1 = Relation.columns r1 in
  check "column past the limit fell back to wide" true
    (Column.eq_bitmap c1 0 (Value.Int n) = None);
  check "old values also answer through the fallback" true
    (Column.eq_bitmap c1 0 (Value.Int 0) = None);
  (* The failure mode this guards: a stale ≤64-value bitmap table would
     answer the new value from its "absent = empty" default.  A plan
     compiled before the add (when bitmap filtering was eligible) must
     still see the new row when run on the churned database. *)
  let head_q =
    {
      Ast.name = "Q";
      head = [ "f" ];
      body = Ast.Atom { Ast.rel = "B"; args = [ Ast.Const (Value.Int n); Ast.Var "f" ] };
    }
  in
  let db0 = Database.of_relations [ r0 ] in
  let t0 = Plan.compile_fo db0 head_q in
  let db1 = Database.insert_tuple "B" tup db0 in
  let ans = Plan.run db1 t0 in
  check "pre-churn plan sees the 65th value" true
    (Relation.mem (Tuple.of_ints [ 1 ]) ans);
  check "plan route agrees with the legacy oracle" true
    (Relation.equal
       (Query.eval db1 (Query.Fo head_q))
       (Query.eval_legacy db1 (Query.Fo head_q)));
  (* Dual direction: a value leaving its last row loses its bitmap entry
     and reads as empty, exactly like a rebuild. *)
  let r2 = Relation.remove (Tuple.of_ints [ 0; 0 ]) r0 in
  (match Column.eq_bitmap (Relation.columns r2) 0 (Value.Int 0) with
  | Some bm -> check "vanished value reads empty" true (Bitmap.is_empty bm)
  | None -> Alcotest.fail "boundary column should still have bitmaps")

(* ---------- regressions: memo and plan-cache churn semantics ---------- *)

let churn_db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "R" [ "id"; "score" ])
        [ [ 1; 5 ]; [ 2; 8 ]; [ 3; 2 ] ];
      Relation.of_int_rows (Schema.make "Bad" [ "id" ]) [ [ 9 ] ];
      Relation.of_int_rows (Schema.make "U" [ "x" ]) [ [ 7 ] ];
    ]

let churn_inst () =
  Instance.make ~db:churn_db
    ~select:(Query.Fo (q "Q(n, s) := R(n, s)"))
    ~compat:
      (Instance.Compat_query (Query.Fo (q "Qc() := exists a, s. RQ(a, s) & Bad(a)")))
    ~cost:Rating.card_or_infinite
    ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget:3. ()

let test_netnoop_keeps_memo () =
  with_tracing @@ fun () ->
  let inst = churn_inst () in
  ignore (Instance.candidates inst);
  ignore (Query.eval inst.Instance.db inst.Instance.select);
  let pk = pkg [ [ 1; 5 ] ] in
  check "initially compatible" true (Validity.compatible inst pk);
  (* add-then-remove of one tuple restores every revision: the instance
     under the round-tripped database keeps the whole memo *)
  let tup = Tuple.of_ints [ 4; 4 ] in
  let db2 =
    Database.delete_tuple "R" tup (Database.insert_tuple "R" tup inst.Instance.db)
  in
  let inst2 = Instance.update_db inst db2 in
  let chits = counter_value "memo.candidates_hit" in
  ignore (Instance.candidates inst2);
  check "net no-op keeps the candidates memo" true
    (counter_value "memo.candidates_hit" = chits + 1);
  let vhits = counter_value "memo.compat_hit" in
  check "verdict unchanged" true (Validity.compatible inst2 pk);
  check "net no-op keeps the verdict memo" true
    (counter_value "memo.compat_hit" = vhits + 1);
  (* and the global plan cache hits again: same fingerprint *)
  let phits = counter_value "plan.cache_hit" in
  ignore (Query.eval db2 inst.Instance.select);
  check "net no-op hits the plan cache" true
    (counter_value "plan.cache_hit" = phits + 1)

let test_unrelated_mutation_keeps_memo () =
  with_tracing @@ fun () ->
  let inst = churn_inst () in
  ignore (Instance.candidates inst);
  let pk = pkg [ [ 2; 8 ] ] in
  ignore (Validity.compatible inst pk);
  (* U is mentioned by neither Q nor Qc: both memos survive the update *)
  let inst2 = Instance.insert_tuple inst "U" (Tuple.of_ints [ 8 ]) in
  check "candidates memo retained" true
    (counter_value "memo.candidates_kept" = 1);
  check "compat memo retained" true (counter_value "memo.compat_kept" = 1);
  let chits = counter_value "memo.candidates_hit" in
  ignore (Instance.candidates inst2);
  check "retained candidates answer from the memo" true
    (counter_value "memo.candidates_hit" = chits + 1);
  let vhits = counter_value "memo.compat_hit" in
  check "verdict unchanged" true (Validity.compatible inst2 pk);
  check "retained verdicts answer from the memo" true
    (counter_value "memo.compat_hit" = vhits + 1)

let test_real_mutation_flips_verdict () =
  with_tracing @@ fun () ->
  let inst = churn_inst () in
  let pk = pkg [ [ 1; 5 ] ] in
  check "initially compatible" true (Validity.compatible inst pk);
  (* memoized: *)
  check "verdict memoized" true (Validity.compatible inst pk);
  check "second ask was a memo hit" true (counter_value "memo.compat_hit" >= 1);
  (* flagging item 1 in Bad is a real mutation of a Qc dependency: the
     memo entry must not survive to serve the stale [true] *)
  let inst2 = Instance.insert_tuple inst "Bad" (Tuple.of_ints [ 1 ]) in
  check "real mutation flips the verdict" false (Validity.compatible inst2 pk);
  check "compat memo was not retained" true
    (counter_value "memo.compat_kept" = 0);
  (* the other direction: deleting the flag restores compatibility *)
  let inst3 = Instance.delete_tuple inst2 "Bad" (Tuple.of_ints [ 1 ]) in
  check "deleting the flag restores the verdict" true
    (Validity.compatible inst3 pk)

(* ---------- differential Datalog delta: frozen vs live strata ---------- *)

let test_differential_datalog () =
  let db =
    force_db_caches
      (Database.of_relations
         [
           Relation.of_int_rows (Schema.make "E" [ "s"; "d" ])
             [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ];
         ])
  in
  let rq_schema = Schema.make "RQ" [ "id"; "score" ] in
  (* T is independent of RQ (frozen); Ans joins against it (live). *)
  let prog =
    p
      "T(x,y) :- E(x,y). T(x,z) :- E(x,y), T(y,z). Ans(x,z) :- T(x,z), \
       RQ(x, s). ?- Ans."
  in
  let d = Plan.delta_prepare_datalog db ~rel:"RQ" ~schema:rq_schema prog in
  check_int "transitive closure froze" 1 (Plan.delta_cached_nodes d);
  let agree rq =
    Relation.equal (Plan.delta_eval d rq)
      (Query.eval_legacy (Database.add rq db) (Query.Dl prog))
  in
  check "delta = from-scratch (one item)" true
    (agree (Relation.of_int_rows rq_schema [ [ 1; 5 ] ]));
  check "delta = from-scratch (two items)" true
    (agree (Relation.of_int_rows rq_schema [ [ 2; 5 ]; [ 3; 1 ] ]));
  check "delta = from-scratch (empty)" true
    (agree (Relation.empty rq_schema));
  (* A program that never mentions RQ freezes whole — including the
     answer, which must then flow back out of the overlay. *)
  let tc = p "T(x,y) :- E(x,y). T(x,z) :- E(x,y), T(y,z). ?- T." in
  let d2 = Plan.delta_prepare_datalog db ~rel:"RQ" ~schema:rq_schema tc in
  check_int "everything froze" 1 (Plan.delta_cached_nodes d2);
  check "frozen answer still evaluates" true
    (Relation.equal
       (Plan.delta_eval d2 (Relation.of_int_rows rq_schema [ [ 1; 1 ] ]))
       (Query.eval_legacy db (Query.Dl tc)))

(* ---------- property: maintained structures = from-scratch rebuild ---------- *)

let prop_incremental_structures =
  QCheck.Test.make
    ~name:"churn: every maintained cache agrees with a from-scratch rebuild"
    ~count:80 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let sch = Schema.make "R" [ "a"; "b" ] in
      let r0 =
        force_caches (Workload.Random_db.relation rng sch ~rows:10 ~domain:5)
      in
      let r = ref r0 in
      let ok = ref true in
      let steps = 1 + Random.State.int rng 24 in
      for _ = 1 to steps do
        let tup =
          Tuple.of_ints [ Random.State.int rng 6; Random.State.int rng 6 ]
        in
        (r :=
           if Random.State.bool rng then Relation.add tup !r
           else Relation.remove tup !r);
        let fresh = rebuild !r in
        let probes = List.init 6 (fun v -> Value.Int v) in
        let mem = Relation.fast_mem !r in
        ok :=
          !ok
          && Relation.has_columns !r (* maintained, never degraded *)
          && Relation.to_list !r = Relation.to_list fresh
          && Relation.values !r = Relation.values fresh
          && Relation.equal !r fresh
          && Relation.for_all mem fresh
          && (not (mem (Tuple.of_ints [ 9; 9 ])))
          && counts_agree (Relation.col_counts !r) (Relation.col_counts fresh)
          && List.for_all
               (fun v ->
                 Relation.select_eq !r 0 v = Relation.select_eq fresh 0 v)
               probes
          && (let c = Relation.columns !r and cf = Relation.columns fresh in
              Column.rows c = Column.rows cf
              && List.for_all
                   (fun i -> Column.ids c i = Column.ids cf i)
                   [ 0; 1 ]
              && List.for_all
                   (fun v ->
                     match (Column.eq_bitmap c 0 v, Column.eq_bitmap cf 0 v) with
                     | Some a, Some b -> Bitmap.to_list a = Bitmap.to_list b
                     | None, None -> true
                     | _ -> false)
                   probes)
      done;
      !ok)

(* ---------- property: churn agreement, six languages × policies × engines ---------- *)

let lang_queries =
  [
    Query.Fo (q "Q(n, s) := L(n, s) & s > 2") (* SP *);
    Query.Fo (q "Q(n, s) := exists m. E(n, m) & L(n, s)") (* CQ *);
    Query.Fo
      (q
         "Q(n, s) := (exists m. E(n, m) & L(n, s)) | (exists m. E(m, n) & \
          L(n, s))") (* UCQ *);
    Query.Fo
      (q "Q(n, s) := L(n, s) & (exists m. (E(n, m) | E(m, n)) & L(m, 7))")
    (* ∃FO⁺ *);
    Query.Fo (q "Q(n, s) := L(n, s) & not (exists m. E(n, m))") (* FO *);
  ]

let nr_program =
  p "Hop2(n, s) :- E(n, m), E(m, o), L(o, s). ?- Hop2." (* DATALOGnr *)

let tc_program =
  p "T(x,y) :- E(x,y). T(x,z) :- E(x,y), T(y,z). ?- T." (* DATALOG *)

let policies = [ Plan.Textual; Plan.Greedy; Plan.Stats ]

let prop_churn_all_languages =
  QCheck.Test.make
    ~name:
      "churn: plan routes (3 policies) and legacy engine agree after random \
       add/remove streams, six languages"
    ~count:40 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db0 =
        force_db_caches
          (Database.of_relations
             [
               Workload.Random_db.relation rng (Schema.make "E" [ "s"; "d" ])
                 ~rows:8 ~domain:6;
               Workload.Random_db.relation rng (Schema.make "L" [ "n"; "v" ])
                 ~rows:8 ~domain:6;
             ])
      in
      (* random interleaved insert/delete stream over both relations *)
      let steps = 1 + Random.State.int rng 12 in
      let db = ref db0 in
      for _ = 1 to steps do
        let name = if Random.State.bool rng then "E" else "L" in
        let tup =
          Tuple.of_ints [ Random.State.int rng 8; Random.State.int rng 8 ]
        in
        db :=
          (if Random.State.bool rng then Database.insert_tuple
           else Database.delete_tuple)
            name tup !db
      done;
      let churned = !db in
      let oracle_db = rebuild_db churned in
      let fo_ok =
        List.for_all
          (fun query ->
            let reference = Query.eval_legacy oracle_db query in
            Relation.equal reference (Query.eval churned query)
            &&
            match query with
            | Query.Fo fq ->
                List.for_all
                  (fun policy ->
                    Relation.equal reference
                      (Plan.run churned (Plan.compile_fo ~policy churned fq)))
                  policies
            | _ -> true)
          lang_queries
      in
      let dl_ok =
        List.for_all
          (fun prog ->
            Relation.equal
              (Query.eval_legacy oracle_db (Query.Dl prog))
              (Plan.run churned (Plan.compile_datalog churned prog)))
          [ nr_program; tc_program ]
      in
      fo_ok && dl_ok)

(* ---------- suite ---------- *)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "churn"
    [
      ( "regressions",
        [
          Alcotest.test_case "zero-count key deleted on remove" `Quick
            test_zero_count_key_deleted;
          Alcotest.test_case "bitmap 65th-value boundary" `Quick
            test_bitmap_65th_value;
          Alcotest.test_case "net no-op keeps plan cache and memos" `Quick
            test_netnoop_keeps_memo;
          Alcotest.test_case "unrelated mutation keeps memos" `Quick
            test_unrelated_mutation_keeps_memo;
          Alcotest.test_case "real mutation never serves a stale verdict"
            `Quick test_real_mutation_flips_verdict;
        ] );
      ( "differential",
        [
          Alcotest.test_case "datalog frozen/live strata" `Quick
            test_differential_datalog;
        ]
        @ qsuite [ prop_incremental_structures; prop_churn_all_languages ] );
    ]
