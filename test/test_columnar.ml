(* The columnar storage engine: bitmap algebra, bounds-checked column
   accessors, incremental statistics maintenance under add/remove, and
   differential properties pinning the columnar physical operators
   (column scans, bitmap filters, index-only scans, adaptive joins) to
   the legacy evaluators across every query language.  Also covers the
   P008/P009 typing negatives and the adaptive-join [explain] lines. *)

open Qlang
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Bitmap = Relational.Bitmap
module Column = Relational.Column
module Intern = Relational.Intern

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let counter_value name =
  match List.assoc_opt name (Observe.snapshot ()) with
  | Some (Observe.Count n) -> n
  | _ -> 0

let with_tracing f =
  let was = Observe.enabled () in
  Observe.set_enabled true;
  Observe.reset ();
  Fun.protect ~finally:(fun () -> Observe.set_enabled was) f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---------- bitmaps ---------- *)

let test_bitmap_basics () =
  let b = Bitmap.create 100 in
  check "fresh bitmap is empty" true (Bitmap.is_empty b);
  (* straddle the first word boundary on purpose *)
  List.iter (Bitmap.set b) [ 0; Bitmap.word_bits - 1; Bitmap.word_bits; 99 ];
  check_int "count" 4 (Bitmap.count b);
  check "get set bit" true (Bitmap.get b Bitmap.word_bits);
  check "get clear bit" false (Bitmap.get b 1);
  Bitmap.clear b Bitmap.word_bits;
  check "cleared" false (Bitmap.get b Bitmap.word_bits);
  check "iter ascending = to_list" true
    (Bitmap.to_list b = [ 0; Bitmap.word_bits - 1; 99 ]);
  check "of_list roundtrip (any order)" true
    (Bitmap.equal b (Bitmap.of_list 100 [ 99; 0; Bitmap.word_bits - 1 ]));
  let full = Bitmap.full 100 in
  check_int "full is canonical past the tail" 100 (Bitmap.count full);
  check "double complement" true
    (Bitmap.equal (Bitmap.diff full (Bitmap.diff full b)) b);
  check_int "inter with full is identity" 3 (Bitmap.count (Bitmap.inter full b));
  check_int "union with full saturates" 100 (Bitmap.count (Bitmap.union full b));
  check_int "fold sums positions" (0 + (Bitmap.word_bits - 1) + 99)
    (Bitmap.fold ( + ) b 0)

let test_bitmap_bounds () =
  let b = Bitmap.create 10 in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument msg ->
        check (name ^ " names Bitmap") true (contains ~sub:"Bitmap." msg)
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "set past the end" (fun () -> Bitmap.set b 10);
  expect_invalid "negative get" (fun () -> Bitmap.get b (-1));
  expect_invalid "clear past the end" (fun () -> Bitmap.clear b 11);
  expect_invalid "inter length mismatch" (fun () ->
      Bitmap.inter b (Bitmap.create 9));
  expect_invalid "negative create" (fun () -> Bitmap.create (-1))

(* ---------- the column store ---------- *)

let r3 =
  Relation.of_int_rows (Schema.make "R" [ "a"; "b" ])
    [ [ 1; 10 ]; [ 2; 20 ]; [ 2; 30 ] ]

let test_column_store () =
  let c = Relation.columns r3 in
  check_int "rows" 3 (Column.rows c);
  check_int "arity" 2 (Column.arity c);
  (* row numbering matches Relation.to_array *)
  let arr = Relation.to_array r3 in
  check "tuple view = to_array" true
    (List.for_all
       (fun i -> compare (Column.tuple c i) arr.(i) = 0)
       [ 0; 1; 2 ]);
  check "value accessor decodes ids" true
    (List.for_all
       (fun (r, v) -> Value.compare (Column.value c ~col:0 ~row:r) (Value.Int v) = 0)
       [ (0, 1); (1, 2); (2, 2) ]);
  check_int "distinct a" 2 (Column.distinct c 0);
  check_int "distinct b" 3 (Column.distinct c 1);
  (* the count tables agree with the tuples *)
  check_int "count of a=2" 2
    (Option.value ~default:0
       (Hashtbl.find_opt (Column.counts c).(0) (Intern.id (Value.Int 2))));
  (* bitmap index on a low-cardinality column *)
  check "low-cardinality column has a bitmap" true (Column.has_bitmap c 0);
  (match Column.eq_bitmap c 0 (Value.Int 2) with
  | Some bm -> check "a=2 selects rows 1,2" true (Bitmap.to_list bm = [ 1; 2 ])
  | None -> Alcotest.fail "expected a bitmap for a=2");
  (match Column.eq_bitmap c 0 (Value.Int 99) with
  | Some bm -> check "absent value gives the empty bitmap" true (Bitmap.is_empty bm)
  | None -> Alcotest.fail "expected an empty bitmap for an absent value")

let test_column_wide_no_bitmap () =
  let wide =
    Relation.of_int_rows (Schema.make "W" [ "a" ])
      (List.init (Column.max_bitmap_distinct + 6) (fun i -> [ i ]))
  in
  let c = Relation.columns wide in
  check "too many distinct values: no bitmap" false (Column.has_bitmap c 0);
  check "eq_bitmap declines on a wide column" true
    (Column.eq_bitmap c 0 (Value.Int 0) = None)

let test_column_bounds () =
  let c = Relation.columns r3 in
  let expect_failure name ~sub f =
    match f () with
    | exception Failure msg ->
        check (name ^ " is a named error") true
          (contains ~sub:"Column." msg && contains ~sub msg)
    | _ -> Alcotest.failf "%s: expected Failure" name
  in
  expect_failure "column out of range" ~sub:"R" (fun () -> Column.ids c 5);
  expect_failure "row out of range" ~sub:"3 rows" (fun () ->
      Column.id c ~col:0 ~row:7);
  expect_failure "negative row" ~sub:"R" (fun () -> Column.tuple c (-1));
  expect_failure "distinct column out of range" ~sub:"arity 2" (fun () ->
      Column.distinct c 2)

(* ---------- incremental statistics ---------- *)

let prop_incremental_counts =
  QCheck.Test.make
    ~name:"col_counts: incremental add/remove chain = from-scratch rebuild"
    ~count:300 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let sch = Schema.make "R" [ "a"; "b" ] in
      let base = Workload.Random_db.relation rng sch ~rows:8 ~domain:4 in
      (* prime the cache so derivations take the incremental path *)
      ignore (Relation.col_counts base);
      let tup () =
        Tuple.of_ints [ Random.State.int rng 4; Random.State.int rng 4 ]
      in
      let r =
        List.fold_left
          (fun r _ ->
            if Random.State.bool rng then Relation.add (tup ()) r
            else Relation.remove (tup ()) r)
          base
          (List.init 12 Fun.id)
      in
      (* the chain must have maintained counts, not dropped them *)
      Relation.has_counts r
      &&
      let fresh = Relation.of_list sch (Relation.to_list r) in
      let dump tbls =
        Array.to_list tbls
        |> List.map (fun tbl ->
               Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
               |> List.sort compare)
      in
      dump (Relation.col_counts r) = dump (Relation.col_counts fresh))

let test_noop_add_remove_keep_cache () =
  let r = r3 in
  ignore (Relation.col_counts r);
  let same = Relation.add (Tuple.of_ints [ 1; 10 ]) r in
  check "re-adding a member returns the same relation" true (same == r);
  let same' = Relation.remove (Tuple.of_ints [ 9; 9 ]) r in
  check "removing a non-member returns the same relation" true (same' == r)

(* ---------- differential properties: columnar = legacy ---------- *)

let policies = [ Plan.Textual; Plan.Greedy; Plan.Stats ]

let random_db rng =
  Workload.Random_db.database rng
    ~specs:[ ("R", 2); ("S", 2); ("T", 1) ]
    ~rows:8 ~domain:4

let random_ucq rng db ~disjuncts =
  let q0 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
  let bodies =
    List.init disjuncts (fun _ ->
        let q = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
        let extra =
          List.filter
            (fun v -> not (List.mem v q0.Ast.head))
            (Ast.free_vars q.Ast.body)
        in
        Ast.exists extra q.Ast.body)
  in
  { q0 with Ast.body = Ast.disj (Ast.exists [] q0.Ast.body :: bodies) }

let random_fo rng db =
  let q1 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
  let q2 = Workload.Random_db.random_cq rng db ~natoms:1 ~nvars:3 in
  let close head f =
    let extra = List.filter (fun v -> not (List.mem v head)) (Ast.free_vars f) in
    Ast.exists extra f
  in
  let body =
    if Random.State.bool rng then
      Ast.And (q1.Ast.body, Ast.Not (close q1.Ast.head q2.Ast.body))
    else
      match q1.Ast.head with
      | v :: _ ->
          Ast.And
            ( q1.Ast.body,
              Ast.Not (Ast.Cmp (Ast.Eq, Ast.Var v, Ast.Const (Value.Int 1))) )
      | [] -> Ast.And (q1.Ast.body, Ast.Not (close [] q2.Ast.body))
  in
  { q1 with Ast.body = body }

(* Columnar compiles under every policy and under both forced adaptive
   modes must agree with both the legacy oracle and the tuple-at-a-time
   plan operators ([~columnar:false], the PR-5 engine). *)
let prop_columnar_matches_legacy =
  QCheck.Test.make
    ~name:"CQ/UCQ/FO: columnar plan = legacy eval = non-columnar plan"
    ~count:120 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let qs =
        [
          Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4;
          random_ucq rng db ~disjuncts:2;
          random_fo rng db;
        ]
      in
      List.for_all
        (fun q ->
          let reference = Query.eval_legacy db (Query.Fo q) in
          List.for_all
            (fun policy ->
              Relation.equal reference
                (Plan.run db (Plan.compile_fo ~policy db q))
              && Relation.equal reference
                   (Plan.run db (Plan.compile_fo ~policy ~columnar:false db q)))
            policies
          && Plan.with_join_threshold 1 (fun () ->
                 Relation.equal reference (Plan.run db (Plan.compile_fo db q)))
          && Plan.with_join_threshold max_int (fun () ->
                 Relation.equal reference (Plan.run db (Plan.compile_fo db q))))
        qs)

let atom rel args = { Ast.rel; args = List.map (fun v -> Ast.Var v) args }

let tc_program =
  {
    Datalog.rules =
      [
        Datalog.rule (atom "reach" [ "x"; "y" ])
          [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule
          (atom "reach" [ "x"; "z" ])
          [
            Datalog.Rel (atom "reach" [ "x"; "y" ]);
            Datalog.Rel (atom "E" [ "y"; "z" ]);
          ];
      ];
    answer = "reach";
  }

let prop_columnar_all_languages =
  QCheck.Test.make
    ~name:"Query.eval (columnar route) = Query.eval_legacy, six languages"
    ~count:80 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let qs =
        [
          Query.Fo (Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4);
          Query.Fo (random_ucq rng db ~disjuncts:2);
          Query.Fo (random_fo rng db);
          Query.Identity "R";
          Query.Empty_query;
        ]
      in
      List.for_all
        (fun q -> Relation.equal (Query.eval db q) (Query.eval_legacy db q))
        qs
      &&
      let g = Workload.Random_db.graph rng ~nodes:6 ~edges:10 in
      Relation.equal
        (Query.eval g (Query.Dl tc_program))
        (Query.eval_legacy g (Query.Dl tc_program)))

(* Forcing the hash arm must actually take it: the counters prove which
   side of the threshold ran, and both sides agree on the answer. *)
let test_adaptive_modes () =
  with_tracing @@ fun () ->
  let rng = Random.State.make [| 41 |] in
  let db = random_db rng in
  let q = Parser.parse_query "Q(x, z) := exists y. R(x, y) & S(y, z)" in
  let nl =
    Plan.with_join_threshold max_int (fun () ->
        Plan.run db (Plan.compile_fo db q))
  in
  check "nested-loop arm ran" true (counter_value "plan.adaptive_nl" >= 1);
  check_int "no hash builds below threshold" 0
    (counter_value "plan.adaptive_hash_builds");
  let hash =
    Plan.with_join_threshold 1 (fun () -> Plan.run db (Plan.compile_fo db q))
  in
  check "hash arm ran" true (counter_value "plan.adaptive_hash_builds" >= 1);
  check "both modes agree" true (Relation.equal nl hash);
  check "threshold restored after with_join_threshold" true
    (Plan.join_threshold () <> 1)

(* ---------- P-series negatives for the new operators ---------- *)

let fixture_db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "hub" [ "city" ]) [ [ 1 ]; [ 2 ] ];
      Relation.of_int_rows (Schema.make "E" [ "s"; "d" ]) [ [ 1; 2 ] ];
    ]

let raw_check text =
  Analysis.Plan_check.check ~db:fixture_db (Analysis.Plan_parse.parse text)

let has_code code =
  List.exists (fun d -> d.Analysis.Diagnostic.code = code)

let test_plan_check_negatives () =
  check "P008: bitmap filter without a constant" true
    (has_code "P008" (raw_check "answer Q(city)\n  bitmap-filter hub(city)"));
  check "P009: index-only keeps an unbound variable" true
    (has_code "P009"
       (raw_check "answer Q(z)\n  index-only hub(city) keep [z]"));
  check "P001 reaches column scans" true
    (has_code "P001" (raw_check "answer Q(x)\n  column-scan nosuch(x)"));
  check "P002 reaches adaptive joins" true
    (has_code "P002"
       (raw_check
          "answer Q(s)\n  adaptive-join E(s)\n    column-scan hub(city)"));
  (* the well-typed forms pass, parser round-trips included *)
  check "well-typed columnar plan is clean" true
    (Analysis.Plan_check.ok
       (raw_check
          "answer Q(s)\n\
          \  adaptive-join E(s, d)\n\
          \    index-only hub(city) keep [city]"));
  check "well-typed bitmap filter is clean" true
    (Analysis.Plan_check.ok
       (raw_check "answer Q(s)\n  bitmap-filter E(s, 2)"))

(* compiled columnar plans stay fully verified: typing, rewrite
   certificates, budget/fault lint and effects, across policies *)
let prop_columnar_plans_verify =
  QCheck.Test.make ~name:"compiled columnar plans pass Plan_check" ~count:60
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4 in
      List.for_all
        (fun policy ->
          let plan = Plan.compile_fo ~policy db q in
          Analysis.Plan_check.ok
            (Analysis.Plan_check.check ~db ~query:(Query.Fo q) plan))
        policies)

(* ---------- explain: the adaptive-join decision is printed ---------- *)

let test_explain_adaptive () =
  let rng = Random.State.make [| 43 |] in
  let db = random_db rng in
  let q = Query.Fo (Parser.parse_query "Q(x, z) := exists y. R(x, y) & S(y, z)") in
  let text = Engine.explain db q in
  check "explain names the adaptive join" true
    (contains ~sub:"adaptive-join" text);
  check "explain shows the mode" true
    (contains ~sub:"mode nested-loop" text || contains ~sub:"mode hash" text);
  check "explain shows the threshold" true
    (contains ~sub:Printf.(sprintf "threshold %d" (Plan.join_threshold ())) text);
  check "explain shows the build side" true (contains ~sub:"build actual" text);
  let forced =
    Plan.with_join_threshold 1 (fun () -> Engine.explain db q)
  in
  check "threshold 1 forces the hash arm" true (contains ~sub:"mode hash" forced)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "columnar"
    [
      ( "bitmap",
        [
          Alcotest.test_case "algebra" `Quick test_bitmap_basics;
          Alcotest.test_case "bounds" `Quick test_bitmap_bounds;
        ] );
      ( "column",
        [
          Alcotest.test_case "store" `Quick test_column_store;
          Alcotest.test_case "wide column has no bitmap" `Quick
            test_column_wide_no_bitmap;
          Alcotest.test_case "bounds" `Quick test_column_bounds;
        ] );
      ( "stats",
        qsuite [ prop_incremental_counts ]
        @ [
            Alcotest.test_case "no-op add/remove keep the cache" `Quick
              test_noop_add_remove_keep_cache;
          ] );
      ( "differential",
        qsuite [ prop_columnar_matches_legacy; prop_columnar_all_languages ]
        @ [ Alcotest.test_case "adaptive modes" `Quick test_adaptive_modes ] );
      ( "plan-check",
        qsuite [ prop_columnar_plans_verify ]
        @ [
            Alcotest.test_case "P008/P009 negatives" `Quick
              test_plan_check_negatives;
          ] );
      ( "explain",
        [ Alcotest.test_case "adaptive decision" `Quick test_explain_adaptive ] );
    ]
