(* Tests for the Chandra–Merlin toolkit: CQ homomorphisms, containment,
   equivalence and minimization — cross-validated semantically against the
   evaluators on random databases. *)

module Relation = Relational.Relation
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let q = Qlang.Parser.parse_query
let atoms_of qq = (Qlang.Containment.of_query qq).Qlang.Containment.cq_atoms

let test_containment_basics () =
  (* A triangle-free path query contains the shorter path. *)
  let path2 = q "Q(x, z) := exists y. E(x, y) & E(y, z)" in
  let path3 = q "Q(x, w) := exists y, z. E(x, y) & E(y, z) & E(z, w)" in
  let triangle = q "Q(x, z) := exists y. E(x, y) & E(y, z) & E(z, x)" in
  check "path2 not ⊆ path3" false (Qlang.Containment.contained path2 path3);
  check "triangle ⊆ path2" true (Qlang.Containment.contained triangle path2);
  check "path2 not ⊆ triangle" false (Qlang.Containment.contained path2 triangle);
  check "self containment" true (Qlang.Containment.contained path2 path2);
  check "equivalent reflexive" true (Qlang.Containment.equivalent path3 path3)

let test_containment_with_constants () =
  let qa = q "Q(x) := E(x, 1)" in
  let qb = q "Q(x) := exists y. E(x, y)" in
  check "specific ⊆ general" true (Qlang.Containment.contained qa qb);
  check "general not ⊆ specific" false (Qlang.Containment.contained qb qa);
  let qc = q "Q(x) := E(x, 2)" in
  check "different constants incomparable" false (Qlang.Containment.contained qa qc)

let test_containment_builtins_sound () =
  let strict = q "Q(x) := exists y. E(x, y) & x < y" in
  let loose = q "Q(x) := exists y. E(x, y)" in
  check "filtered ⊆ unfiltered" true (Qlang.Containment.contained strict loose);
  check "unfiltered not ⊆ filtered" false (Qlang.Containment.contained loose strict)

let test_containment_rejects () =
  (try
     ignore (Qlang.Containment.contained (q "Q(x) := not E(x, x)") (q "Q(x) := E(x, x)"));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore
      (Qlang.Containment.contained (q "Q(x) := E(x, x)") (q "Q(x, y) := E(x, y)"));
    Alcotest.fail "expected arity error"
  with Invalid_argument _ -> ()

let test_minimize () =
  (* The redundant copy of an atom folds away. *)
  let redundant = q "Q(x) := exists y, z. E(x, y) & E(x, z)" in
  let m = Qlang.Containment.minimize redundant in
  check_int "one atom left" 1 (List.length (atoms_of m));
  check "still equivalent" true (Qlang.Containment.equivalent redundant m);
  (* A genuine path is not shrunk. *)
  let path = q "Q(x, z) := exists y. E(x, y) & E(y, z)" in
  check_int "path kept" 2
    (List.length (atoms_of (Qlang.Containment.minimize path)))

let test_minimize_keeps_constants () =
  (* E(x, y) ∧ E(x, 1): the second atom is NOT redundant (it constrains),
     and even a homomorphic fold must keep the constant alive. *)
  let qc = q "Q(x) := exists y. E(x, y) & E(x, 1)" in
  let m = Qlang.Containment.minimize qc in
  check "constant survives" true
    (List.mem (Relational.Value.Int 1)
       (Qlang.Ast.all_constants m.Qlang.Ast.body));
  check "equivalent" true (Qlang.Containment.equivalent qc m)

(* Semantic cross-check: contained q1 q2 = true must imply Q1(D) ⊆ Q2(D) on
   random databases; minimize must preserve answers exactly. *)
let prop_containment_sound =
  QCheck.Test.make ~name:"containment: syntactic ⊆ implies semantic ⊆" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db =
        Workload.Random_db.database rng ~specs:[ ("R", 2); ("S", 2) ] ~rows:6
          ~domain:4
      in
      let q1 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
      let q2 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
      (* align head arities by reusing q1's head for q2 when they differ *)
      if List.length q1.Qlang.Ast.head <> List.length q2.Qlang.Ast.head then true
      else if not (Qlang.Containment.contained q1 q2) then true
      else
        Relation.subset
          (Qlang.Fo_eval.eval_query db q1)
          (Qlang.Fo_eval.eval_query db q2))

let prop_minimize_preserves_answers =
  QCheck.Test.make ~name:"minimize preserves answers on random databases"
    ~count:60 (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db =
        Workload.Random_db.database rng ~specs:[ ("R", 2); ("S", 1) ] ~rows:6
          ~domain:4
      in
      let query = Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:3 in
      let minimized = Qlang.Containment.minimize query in
      let a = Qlang.Fo_eval.eval_query db query in
      let b = Qlang.Fo_eval.eval_query db minimized in
      Relation.equal a b)

let prop_minimize_idempotent =
  QCheck.Test.make ~name:"minimize is idempotent" ~count:40
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db =
        Workload.Random_db.database rng ~specs:[ ("R", 2) ] ~rows:4 ~domain:3
      in
      let query = Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:3 in
      let m1 = Qlang.Containment.minimize query in
      let m2 = Qlang.Containment.minimize m1 in
      List.length (atoms_of m1) = List.length (atoms_of m2))

let () =
  Alcotest.run "containment"
    [
      ( "containment",
        [
          Alcotest.test_case "basics" `Quick test_containment_basics;
          Alcotest.test_case "constants" `Quick test_containment_with_constants;
          Alcotest.test_case "built-ins (sound)" `Quick test_containment_builtins_sound;
          Alcotest.test_case "rejections" `Quick test_containment_rejects;
          QCheck_alcotest.to_alcotest prop_containment_sound;
        ] );
      ( "minimization",
        [
          Alcotest.test_case "folds redundancy" `Quick test_minimize;
          Alcotest.test_case "keeps constants alive" `Quick test_minimize_keeps_constants;
          QCheck_alcotest.to_alcotest prop_minimize_preserves_answers;
          QCheck_alcotest.to_alcotest prop_minimize_idempotent;
        ] );
    ]
