(* Tests for the core recommendation library: packages, ratings, instances,
   validity, the EXISTPACK oracle, and the RPP/FRP/MBP/CPP solvers —
   including the property that the paper's oracle-driven FRP algorithm
   agrees with exhaustive enumeration. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pkg ints_rows = Package.of_tuples (List.map Tuple.of_ints ints_rows)

(* ---------- packages ---------- *)

let test_package_canonical () =
  let a = pkg [ [ 1; 2 ]; [ 3; 4 ] ] and b = pkg [ [ 3; 4 ]; [ 1; 2 ]; [ 1; 2 ] ] in
  check "set equality" true (Package.equal a b);
  check_int "size dedups" 2 (Package.size b);
  check "mem" true (Package.mem (Tuple.of_ints [ 1; 2 ]) a);
  check "subset" true (Package.subset a (Package.add (Tuple.of_ints [ 9; 9 ]) a));
  check "strict superset" true
    (Package.strict_superset a (Package.add (Tuple.of_ints [ 9; 9 ]) a));
  check "not strict of itself" false (Package.strict_superset a a)

let test_package_relation_bridge () =
  let sch = Schema.make "RQ" [ "a"; "b" ] in
  let p = pkg [ [ 1; 2 ]; [ 2; 3 ] ] in
  let r = Package.to_relation sch p in
  check_int "relation size" 2 (Relation.cardinal r);
  check "subset_of_relation" true (Package.subset_of_relation p r);
  check "not subset" false
    (Package.subset_of_relation (pkg [ [ 7; 7 ] ]) r)

(* ---------- ratings ---------- *)

let test_rating_combinators () =
  let p = pkg [ [ 1; 10 ]; [ 2; 20 ]; [ 3; 30 ] ] in
  Alcotest.(check (float 1e-9)) "count" 3. (Rating.eval Rating.count p);
  Alcotest.(check (float 1e-9)) "sum" 60. (Rating.eval (Rating.sum_col 1) p);
  Alcotest.(check (float 1e-9)) "min" 1. (Rating.eval (Rating.min_col 0) p);
  Alcotest.(check (float 1e-9)) "max" 30. (Rating.eval (Rating.max_col 1) p);
  Alcotest.(check (float 1e-9)) "avg" 20. (Rating.eval (Rating.avg_col 1) p);
  Alcotest.(check (float 1e-9)) "add" 63.
    (Rating.eval (Rating.add Rating.count (Rating.sum_col 1)) p);
  Alcotest.(check (float 1e-9)) "scale" 6. (Rating.eval (Rating.scale 2. Rating.count) p);
  Alcotest.(check (float 1e-9)) "neg" (-3.) (Rating.eval (Rating.neg Rating.count) p);
  check "card_or_infinite on empty" true
    (Rating.eval Rating.card_or_infinite Package.empty = infinity);
  Alcotest.(check (float 1e-9)) "on_empty" 42.
    (Rating.eval (Rating.on_empty 42. Rating.count) Package.empty);
  Alcotest.(check (float 1e-9)) "min on empty" infinity
    (Rating.eval (Rating.min_col 0) Package.empty);
  check "monotone flags" true
    (Rating.is_monotone Rating.count
    && Rating.is_monotone Rating.card_or_infinite
    && Rating.is_monotone (Rating.sum_col ~nonneg:true 0)
    && (not (Rating.is_monotone (Rating.sum_col 0)))
    && not (Rating.is_monotone (Rating.neg Rating.count)))

let test_size_bound () =
  check_int "linear" 17 (Size_bound.max_size Size_bound.linear ~db_size:17);
  check_int "const" 3 (Size_bound.max_size (Size_bound.Const 3) ~db_size:17);
  check_int "quadratic" 9
    (Size_bound.max_size (Size_bound.Poly { coeff = 1; degree = 2 }) ~db_size:3);
  check "is_constant" true (Size_bound.is_constant (Size_bound.Const 1))

(* ---------- a small concrete instance ---------- *)

(* R(id, score): packages maximize total score under |N| <= 2. *)
let small_db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "R" [ "id"; "score" ])
        [ [ 1; 5 ]; [ 2; 3 ]; [ 3; 8 ]; [ 4; 1 ] ];
    ]

let small_inst ?compat ?(budget = 2.) () =
  Instance.make ~db:small_db ~select:(Qlang.Query.Identity "R") ?compat
    ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget ()

let test_validity () =
  let inst = small_inst () in
  check "valid pair" true (Validity.valid inst (pkg [ [ 1; 5 ]; [ 3; 8 ] ]));
  check "over budget" false
    (Validity.valid inst (pkg [ [ 1; 5 ]; [ 2; 3 ]; [ 3; 8 ] ]));
  check "not a candidate" false (Validity.valid inst (pkg [ [ 9; 9 ] ]));
  check "empty over budget (cost ∞)" false (Validity.valid inst Package.empty);
  check "bound" true
    (Validity.valid_for_bound inst ~bound:13. (pkg [ [ 1; 5 ]; [ 3; 8 ] ]));
  check "bound fails" false
    (Validity.valid_for_bound inst ~bound:14. (pkg [ [ 1; 5 ]; [ 3; 8 ] ]))

let test_compat_query_semantics () =
  (* Qc: two distinct items with the same score — here all scores differ,
     so every package is compatible; with a shared-score db it bites. *)
  let qc =
    Qlang.Parser.parse_query
      "Qc() := exists a, s, b, s2. RQ(a, s) & RQ(b, s2) & s = s2 & a != b"
  in
  let inst = small_inst ~compat:(Instance.Compat_query (Qlang.Query.Fo qc)) () in
  check "compatible" true (Validity.compatible inst (pkg [ [ 1; 5 ]; [ 3; 8 ] ]));
  let db2 =
    Database.of_relations
      [
        Relation.of_int_rows (Schema.make "R" [ "id"; "score" ])
          [ [ 1; 5 ]; [ 2; 5 ] ];
      ]
  in
  let inst2 = Instance.with_db inst db2 in
  check "incompatible" false (Validity.compatible inst2 (pkg [ [ 1; 5 ]; [ 2; 5 ] ]));
  check "singleton fine" true (Validity.compatible inst2 (pkg [ [ 1; 5 ] ]))

let test_compat_fn () =
  let compat =
    Instance.Compat_fn ("at-most-one", fun p _ -> Package.size p <= 1)
  in
  let inst = small_inst ~compat () in
  check "fn compatible" true (Validity.compatible inst (pkg [ [ 1; 5 ] ]));
  check "fn incompatible" false
    (Validity.compatible inst (pkg [ [ 1; 5 ]; [ 3; 8 ] ]))

let test_empty_compat_query_is_noop () =
  let inst = small_inst ~compat:(Instance.Compat_query Qlang.Query.Empty_query) () in
  check "has_compat false for empty query" false (Instance.has_compat inst);
  check "everything compatible" true
    (Validity.compatible inst (pkg [ [ 1; 5 ]; [ 3; 8 ] ]))

(* ---------- Exist_pack ---------- *)

let test_search_basics () =
  let inst = small_inst () in
  let c = Exist_pack.ctx inst in
  check_int "candidates" 4 (Exist_pack.candidate_count c);
  (* best pair: {3,8} + {1,5} = 13 *)
  (match Exist_pack.search c ~bound:13. () with
  | Some p -> check "rating >= 13" true (Rating.eval inst.Instance.value p >= 13.)
  | None -> Alcotest.fail "expected a package");
  check "bound 14 unreachable" true (Exist_pack.search c ~bound:14. () = None);
  check "strict at 13 unreachable" true
    (Exist_pack.search c ~strict:true ~bound:13. () = None)

let test_search_excluded_and_containing () =
  let inst = small_inst () in
  let c = Exist_pack.ctx inst in
  let best = pkg [ [ 1; 5 ]; [ 3; 8 ] ] in
  (match Exist_pack.search c ~bound:11. ~excluded:[ best ] () with
  | Some p ->
      check "distinct" false (Package.equal p best);
      check "still >= 11" true (Rating.eval inst.Instance.value p >= 11.)
  | None -> Alcotest.fail "expected the second-best package");
  (* containing: strict extensions of {(2,3)} *)
  let base = pkg [ [ 2; 3 ] ] in
  (match Exist_pack.search c ~containing:base ~bound:11. () with
  | Some p ->
      check "extends base" true (Package.strict_superset base p);
      check "rating" true (Rating.eval inst.Instance.value p >= 11.)
  | None -> Alcotest.fail "expected an extension");
  check "containing a non-candidate" true
    (Exist_pack.search c ~containing:(pkg [ [ 9; 9 ] ]) ~bound:0. () = None)

let test_iter_valid_counts () =
  let inst = small_inst () in
  let c = Exist_pack.ctx inst in
  (* valid packages: 4 singletons + C(4,2)=6 pairs (empty has cost ∞) *)
  check_int "all valid" 10 (List.length (Exist_pack.all_valid c));
  match Exist_pack.find_k_distinct ~bound:8. ~k:3 c with
  | Some ps ->
      check_int "three found" 3 (List.length ps);
      check "all rated >= 8" true
        (List.for_all (fun p -> Rating.eval inst.Instance.value p >= 8.) ps)
  | None -> Alcotest.fail "expected three packages"

let test_pruning_preserves_answers () =
  (* The same cost function with and without the monotone flag must give the
     same valid-package set. *)
  let mk monotone =
    Instance.make ~db:small_db ~select:(Qlang.Query.Identity "R")
      ~cost:
        (Rating.of_fun ~monotone "size" (fun p -> float_of_int (Package.size p)))
      ~value:(Rating.sum_col ~nonneg:true 1) ~budget:2. ()
  in
  let sort = List.sort Package.compare in
  check "pruned = unpruned" true
    (List.equal Package.equal
       (sort (Exist_pack.all_valid (Exist_pack.ctx (mk true))))
       (sort (Exist_pack.all_valid (Exist_pack.ctx (mk false)))))

(* ---------- RPP ---------- *)

let test_rpp () =
  let inst = small_inst () in
  let best = pkg [ [ 1; 5 ]; [ 3; 8 ] ] in
  let second = pkg [ [ 2; 3 ]; [ 3; 8 ] ] in
  check "top-1" true (Rpp.is_topk inst [ best ]);
  check "top-2" true (Rpp.is_topk inst [ best; second ]);
  check "wrong top-1" false (Rpp.is_topk inst [ second ]);
  check "duplicates rejected" false (Rpp.is_topk inst [ best; best ]);
  check "invalid member rejected" false (Rpp.is_topk inst [ pkg [ [ 9; 9 ] ] ]);
  check "empty set rejected" false (Rpp.is_topk inst []);
  check "explain ok" true (Rpp.explain inst [ best ] = "a top-k selection");
  check "explain finds better" true
    (String.length (Rpp.explain inst [ second ]) > 20)

let test_rpp_ties () =
  (* Two packages with equal best rating: either is a valid top-1. *)
  let db =
    Database.of_relations
      [ Relation.of_int_rows (Schema.make "R" [ "id"; "score" ]) [ [ 1; 5 ]; [ 2; 5 ] ] ]
  in
  let inst =
    Instance.make ~db ~select:(Qlang.Query.Identity "R")
      ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
      ~budget:1. ()
  in
  check "tie A" true (Rpp.is_topk inst [ pkg [ [ 1; 5 ] ] ]);
  check "tie B" true (Rpp.is_topk inst [ pkg [ [ 2; 5 ] ] ])

(* ---------- FRP ---------- *)

let test_frp_enumerate () =
  let inst = small_inst () in
  (match Frp.enumerate inst ~k:2 with
  | Some [ a; b ] ->
      Alcotest.(check (float 1e-9)) "best" 13. (Rating.eval inst.Instance.value a);
      Alcotest.(check (float 1e-9)) "second" 11. (Rating.eval inst.Instance.value b);
      check "is a top-2 selection" true (Rpp.is_topk inst [ a; b ])
  | _ -> Alcotest.fail "expected two packages");
  check "k too large" true (Frp.enumerate inst ~k:11 = None)

let test_frp_oracle_hand () =
  let inst = small_inst () in
  match Frp.oracle inst ~k:2 ~val_lo:0 ~val_hi:20 with
  | Some ([ a; _ ] as sel) ->
      Alcotest.(check (float 1e-9)) "best" 13. (Rating.eval inst.Instance.value a);
      check "oracle output is a top-2 selection" true (Rpp.is_topk inst sel)
  | _ -> Alcotest.fail "expected two packages"

let test_frp_stream () =
  let inst = small_inst () in
  let first3 = List.of_seq (Seq.take 3 (Frp.stream inst)) in
  (match Frp.enumerate inst ~k:3 with
  | Some top3 -> check "stream prefix = top-k" true (List.equal Package.equal first3 top3)
  | None -> Alcotest.fail "expected top-3");
  (* full drain: every valid package exactly once, ratings non-increasing *)
  let all = List.of_seq (Frp.stream inst) in
  check_int "drains all valid" 10 (List.length all);
  let vals = List.map (Rating.eval inst.Instance.value) all in
  check "non-increasing" true
    (List.for_all2 (fun a b -> a >= b) (List.filteri (fun i _ -> i < 9) vals)
       (List.tl vals));
  check_int "distinct" 10 (List.length (List.sort_uniq Package.compare all))

let test_frp_greedy_valid () =
  let inst = small_inst () in
  let sel = Frp.greedy inst ~k:2 in
  check "greedy returns valid distinct packages" true
    (List.for_all (Validity.valid inst) sel
    && List.length (List.sort_uniq Package.compare sel) = List.length sel)

(* Random instances: identity query over a random relation, count cost,
   non-negative integer column sum as value, optional compat function. *)
let random_instance seed =
  let rng = Random.State.make [| seed |] in
  let rows = 3 + Random.State.int rng 4 in
  let domain = 5 in
  let rel =
    Relation.of_list (Schema.make "R" [ "id"; "w" ])
      (List.init rows (fun i ->
           Tuple.of_ints [ i; Random.State.int rng domain ]))
  in
  let db = Database.of_relations [ rel ] in
  let budget = float_of_int (1 + Random.State.int rng 2) in
  let compat =
    if Random.State.bool rng then Instance.No_constraint
    else
      (* forbid packages holding two items whose weights sum to >= 8 *)
      Instance.Compat_fn
        ( "weight-cap",
          fun p _ ->
            let ws =
              List.map
                (fun t -> Value.int_exn (Tuple.get t 1))
                (Package.to_list p)
            in
            List.for_all
              (fun a -> List.length (List.filter (fun b -> a + b >= 8) ws) <= 1)
              ws )
  in
  Instance.make ~db ~select:(Qlang.Query.Identity "R") ~compat
    ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget ()

let prop_oracle_matches_enumerate =
  QCheck.Test.make ~name:"FRP: oracle algorithm = enumeration (ratings)" ~count:40
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let inst = random_instance seed in
      let k = 1 + (seed mod 3) in
      let hi = 4 * Instance.max_package_size inst * 5 in
      let enum = Frp.enumerate inst ~k in
      let orac = Frp.oracle inst ~k ~val_lo:0 ~val_hi:hi in
      match enum, orac with
      | None, None -> true
      | Some a, Some b ->
          let vals l = List.map (Rating.eval inst.Instance.value) l in
          vals a = vals b && Rpp.is_topk inst b
      | _ -> false)

let prop_topk_certified_by_rpp =
  QCheck.Test.make ~name:"FRP output certified by RPP" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let inst = random_instance seed in
      match Frp.enumerate inst ~k:2 with
      | None -> true
      | Some sel -> Rpp.is_topk inst sel)

(* ---------- additive branch and bound ---------- *)

let item_w t = float_of_int (Value.int_exn (Tuple.get t 1))

let test_bnb_hand () =
  let inst = small_inst () in
  match Frp.branch_and_bound inst ~item_value:item_w ~k:2 with
  | Some [ a; b ] ->
      Alcotest.(check (float 1e-9)) "best" 13. (Rating.eval inst.Instance.value a);
      Alcotest.(check (float 1e-9)) "second" 11. (Rating.eval inst.Instance.value b);
      check "certified" true (Rpp.is_topk inst [ a; b ])
  | _ -> Alcotest.fail "expected two packages"

let test_bnb_with_compat () =
  (* positive CQ Qc (two items with equal scores) is anti-monotone *)
  let qc =
    Qlang.Parser.parse_query
      "Qc() := exists a, s, b, s2. RQ(a, s) & RQ(b, s2) & s = s2 & a != b"
  in
  let db =
    Database.of_relations
      [
        Relation.of_int_rows (Schema.make "R" [ "id"; "score" ])
          [ [ 1; 8 ]; [ 2; 8 ]; [ 3; 5 ]; [ 4; 2 ] ];
      ]
  in
  let inst =
    Instance.make ~db ~select:(Qlang.Query.Identity "R")
      ~compat:(Instance.Compat_query (Qlang.Query.Fo qc))
      ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
      ~budget:2. ()
  in
  match
    ( Frp.branch_and_bound ~compat_antimonotone:true inst ~item_value:item_w ~k:2,
      Frp.enumerate inst ~k:2 )
  with
  | Some bnb, Some enum ->
      let vals l = List.map (Rating.eval inst.Instance.value) l in
      check "ratings agree under Qc" true (vals bnb = vals enum);
      check "certified" true (Rpp.is_topk inst bnb)
  | _ -> Alcotest.fail "both should succeed"

let prop_bnb_matches_enumerate =
  QCheck.Test.make ~name:"additive B&B = enumeration (ratings)" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let inst = random_instance seed in
      let k = 1 + (seed mod 3) in
      match
        Frp.branch_and_bound inst ~item_value:item_w ~k, Frp.enumerate inst ~k
      with
      | None, None -> true
      | Some a, Some b ->
          let vals l = List.map (Rating.eval inst.Instance.value) l in
          vals a = vals b && Rpp.is_topk inst a
      | Some _, None | None, Some _ -> false)

(* ---------- Monte-Carlo counting ---------- *)

let test_estimate_exact_on_tiny () =
  let inst = small_inst () in
  let rng = Random.State.make [| 11 |] in
  (* with many samples per size on a 4-item instance the estimate must land
     close to the exact count *)
  let est = Cpp.estimate inst ~bound:8. ~samples_per_size:2000 rng in
  let exact = float_of_int (Cpp.count inst ~bound:8.) in
  check "estimate close" true (Float.abs (est -. exact) <= 1.);
  (* bound nobody reaches *)
  Alcotest.(check (float 1e-9)) "zero estimate" 0.
    (Cpp.estimate inst ~bound:1000. ~samples_per_size:200 rng)

let prop_estimate_tracks_count =
  QCheck.Test.make ~name:"Monte-Carlo count tracks the exact count" ~count:20
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let inst = random_instance seed in
      let rng = Random.State.make [| seed; 7 |] in
      let exact = float_of_int (Cpp.count inst ~bound:4.) in
      let est = Cpp.estimate inst ~bound:4. ~samples_per_size:3000 rng in
      (* generous tolerance: the estimator is unbiased, strata are small *)
      Float.abs (est -. exact) <= Float.max 2. (0.25 *. exact))

(* When every subset is valid the estimator is exact whatever the samples
   draw — every sample hits, so each stratum contributes C(n, j) on the
   nose.  In particular the j = 0 stratum contributes exactly 1: the
   empty package counts (cost() = card, not the cost(∅) = ∞ convention). *)
let test_estimate_all_valid_is_exact () =
  let inst =
    Instance.make ~db:small_db ~select:(Qlang.Query.Identity "R")
      ~cost:Rating.count ~value:(Rating.const 1.) ~budget:100. ()
  in
  let rng = Random.State.make [| 5 |] in
  let est = Cpp.estimate inst ~bound:0. ~samples_per_size:3 rng in
  Alcotest.(check (float 1e-9)) "2^4 exactly" 16. est;
  check_int "agrees with the exact count" 16 (Cpp.count inst ~bound:0.)

let big_flat_db rows =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "B" [ "id" ])
        (List.init rows (fun i -> [ i ]));
    ]

(* 1200 candidates: C(1200, j) overflows a float for mid-size j.  With
   budget 2 every stratum above j = 2 draws zero hits; those strata must
   contribute exactly 0 (the old code multiplied inf · 0 = nan and
   poisoned the whole sum), leaving the small strata counted exactly:
   1 + C(1200, 1) + C(1200, 2). *)
let test_estimate_overflow_strata_zero_hits () =
  let inst =
    Instance.make ~db:(big_flat_db 1200) ~select:(Qlang.Query.Identity "B")
      ~cost:Rating.count ~value:(Rating.const 1.) ~budget:2. ()
  in
  let rng = Random.State.make [| 13 |] in
  let est = Cpp.estimate inst ~bound:0. ~samples_per_size:1 rng in
  check "finite" true (Float.is_finite est);
  Alcotest.(check (float 1e-3)) "1 + 1200 + C(1200,2)" 720601. est

(* With a huge budget every stratum hits, and the true count 2^1200 is far
   beyond the float range: the estimator must fail loudly with its named
   error, not return infinity or nan. *)
let test_estimate_overflow_named_error () =
  let inst =
    Instance.make ~db:(big_flat_db 1200) ~select:(Qlang.Query.Identity "B")
      ~cost:Rating.count ~value:(Rating.const 1.) ~budget:1e9 ()
  in
  let rng = Random.State.make [| 17 |] in
  match Cpp.estimate inst ~bound:0. ~samples_per_size:1 rng with
  | exception Failure msg ->
      check "named error" true
        (String.length msg >= 13 && String.sub msg 0 13 = "Cpp.estimate:")
  | x -> Alcotest.failf "expected an overflow failure, got %g" x

(* ---------- MBP ---------- *)

let test_mbp () =
  let inst = small_inst () in
  check "13 is max bound for k=1" true (Mbp.is_max_bound inst ~k:1 ~bound:13.);
  check "12 is a bound but not max" true
    (Mbp.is_bound inst ~k:1 ~bound:12. && not (Mbp.is_max_bound inst ~k:1 ~bound:12.));
  check "14 is not a bound" false (Mbp.is_bound inst ~k:1 ~bound:14.);
  Alcotest.(check (option (float 1e-9))) "max_bound k=1" (Some 13.) (Mbp.max_bound inst ~k:1);
  Alcotest.(check (option (float 1e-9))) "max_bound k=2" (Some 11.) (Mbp.max_bound inst ~k:2);
  Alcotest.(check (option (float 1e-9))) "max_bound k=20" None (Mbp.max_bound inst ~k:20)

let prop_mbp_consistent =
  QCheck.Test.make ~name:"MBP: max_bound is certified by is_max_bound" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let inst = random_instance seed in
      let k = 1 + (seed mod 2) in
      match Mbp.max_bound inst ~k with
      | None -> true
      | Some b ->
          Mbp.is_max_bound inst ~k ~bound:b
          && not (Mbp.is_max_bound inst ~k ~bound:(b +. 1.)))

(* ---------- CPP ---------- *)

let test_cpp () =
  let inst = small_inst () in
  (* valid: 4 singletons + 6 pairs; sums: singletons 5, 3, 8, 1;
     pairs 8, 13, 6, 11, 4, 9 — rated >= 8: {8}, {5,3}, {5,8}, {3,8}, {8,1} *)
  check_int "count >= 8" 5 (Cpp.count inst ~bound:8.);
  check_int "count > 8" 3 (Cpp.count_strict inst ~bound:8.);
  check_int "count >= 0" 10 (Cpp.count inst ~bound:0.);
  check_int "count >= 100" 0 (Cpp.count inst ~bound:100.)

let brute_count inst ~bound =
  (* Reference: enumerate all subsets of Q(D) up to the size bound. *)
  let cands = Relation.to_list (Instance.candidates inst) in
  let maxs = Instance.max_package_size inst in
  let n = ref 0 in
  (* include/exclude recursion: each subset is reached exactly once, at the
     leaf where [rest] is exhausted *)
  let rec go chosen rest =
    match rest with
    | [] ->
        if List.length chosen <= maxs then begin
          let p = Package.of_tuples chosen in
          if Validity.valid_for_bound inst ~bound p then incr n
        end
    | t :: more ->
        go (t :: chosen) more;
        go chosen more
  in
  go [] cands;
  !n

let prop_cpp_matches_brute =
  QCheck.Test.make ~name:"CPP = brute-force subset count" ~count:40
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let inst = random_instance seed in
      let bound = float_of_int (seed mod 7) in
      Cpp.count inst ~bound = brute_count inst ~bound)

let () =
  Alcotest.run "core"
    [
      ( "package",
        [
          Alcotest.test_case "canonical form" `Quick test_package_canonical;
          Alcotest.test_case "relation bridge" `Quick test_package_relation_bridge;
        ] );
      ( "rating",
        [
          Alcotest.test_case "combinators" `Quick test_rating_combinators;
          Alcotest.test_case "size bounds" `Quick test_size_bound;
        ] );
      ( "validity",
        [
          Alcotest.test_case "conditions 1-4" `Quick test_validity;
          Alcotest.test_case "compatibility queries" `Quick test_compat_query_semantics;
          Alcotest.test_case "PTIME compatibility functions" `Quick test_compat_fn;
          Alcotest.test_case "empty Qc is absent" `Quick test_empty_compat_query_is_noop;
        ] );
      ( "exist_pack",
        [
          Alcotest.test_case "search basics" `Quick test_search_basics;
          Alcotest.test_case "excluded and containing" `Quick
            test_search_excluded_and_containing;
          Alcotest.test_case "enumeration counts" `Quick test_iter_valid_counts;
          Alcotest.test_case "pruning preserves answers" `Quick
            test_pruning_preserves_answers;
        ] );
      ( "rpp",
        [
          Alcotest.test_case "decision" `Quick test_rpp;
          Alcotest.test_case "ties" `Quick test_rpp_ties;
        ] );
      ( "frp",
        [
          Alcotest.test_case "enumerate" `Quick test_frp_enumerate;
          Alcotest.test_case "oracle algorithm" `Quick test_frp_oracle_hand;
          Alcotest.test_case "ranked stream" `Quick test_frp_stream;
          Alcotest.test_case "greedy validity" `Quick test_frp_greedy_valid;
          QCheck_alcotest.to_alcotest prop_oracle_matches_enumerate;
          QCheck_alcotest.to_alcotest prop_topk_certified_by_rpp;
          Alcotest.test_case "additive B&B (hand)" `Quick test_bnb_hand;
          Alcotest.test_case "additive B&B under positive Qc" `Quick
            test_bnb_with_compat;
          QCheck_alcotest.to_alcotest prop_bnb_matches_enumerate;
        ] );
      ( "mbp",
        [
          Alcotest.test_case "bounds" `Quick test_mbp;
          QCheck_alcotest.to_alcotest prop_mbp_consistent;
        ] );
      ( "cpp",
        [
          Alcotest.test_case "counting" `Quick test_cpp;
          QCheck_alcotest.to_alcotest prop_cpp_matches_brute;
          Alcotest.test_case "Monte-Carlo estimate (tiny)" `Quick
            test_estimate_exact_on_tiny;
          QCheck_alcotest.to_alcotest prop_estimate_tracks_count;
          Alcotest.test_case "estimate exact when all subsets valid" `Quick
            test_estimate_all_valid_is_exact;
          Alcotest.test_case "overflowed zero-hit strata contribute 0" `Quick
            test_estimate_overflow_strata_zero_hits;
          Alcotest.test_case "overflow raises a named error" `Quick
            test_estimate_overflow_named_error;
        ] );
    ]
