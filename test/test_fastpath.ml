(* Tests for the relational fast paths: the interning pool, by-column
   indexes and their invalidation, the index-backed CQ strategy, the
   per-instance candidate/compatibility memos, the one-pass Bindings.extend,
   and the deterministic multicore package search. *)

open Core
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Intern = Relational.Intern
module Pool = Parallel.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

(* ---------- interning ---------- *)

let test_intern () =
  let v = Value.Int 123456 and w = Value.Str "fastpath-test" in
  let iv = Intern.id v and iw = Intern.id w in
  check "distinct values, distinct ids" true (iv <> iw);
  check_int "id is stable" iv (Intern.id v);
  check "value round trips" true (Value.equal v (Intern.value iv));
  check "find after id" true (Intern.find v = Some iv);
  let t = Tuple.of_list [ v; w; v ] in
  let packed = Intern.pack t in
  check "pack uses the same ids" true (packed = [| iv; iw; iv |]);
  check "pool size covers ids" true (Intern.size () > max iv iw)

(* ---------- indexes and invalidation ---------- *)

let abc = Schema.make "R" [ "a"; "b" ]
let tup a b = Tuple.of_ints [ a; b ]

let test_index_probe () =
  let r = Relation.of_int_rows abc [ [ 1; 10 ]; [ 2; 10 ]; [ 3; 20 ] ] in
  check_int "no index until asked" 0 (List.length (Relation.indexed_cols r));
  check_int "probe col 1 = 10" 2
    (List.length (Relation.select_eq r 1 (Value.Int 10)));
  check_int "probe col 1 = 20" 1
    (List.length (Relation.select_eq r 1 (Value.Int 20)));
  check "absent value" true (Relation.select_eq r 0 (Value.Int 99) = []);
  check "never-interned value" true
    (Relation.select_eq r 0 (Value.Str "never-interned-sentinel") = []);
  check "index col recorded" true (List.mem 1 (Relation.indexed_cols r));
  (* Probe results are the filter results, in tuple order. *)
  let probed = Relation.select_eq r 1 (Value.Int 10) in
  let filtered =
    Relation.to_list (Relation.filter (fun t -> Tuple.get t 1 = Value.Int 10) r)
  in
  check "probe = filter" true (probed = filtered)

let test_index_invalidation () =
  let r = Relation.of_int_rows abc [ [ 1; 10 ]; [ 2; 20 ] ] in
  ignore (Relation.select_eq r 1 (Value.Int 10));
  (* A derived relation must not see the parent's index... *)
  let r' = Relation.add (tup 3 10) r in
  check_int "add visible through fresh index" 2
    (List.length (Relation.select_eq r' 1 (Value.Int 10)));
  let r'' = Relation.remove (tup 1 10) r' in
  check_int "remove visible through fresh index" 1
    (List.length (Relation.select_eq r'' 1 (Value.Int 10)));
  (* ...and the parent keeps answering from its own tuples. *)
  check_int "parent unchanged" 1
    (List.length (Relation.select_eq r 1 (Value.Int 10)));
  check "fast_mem agrees with mem" true
    (Relation.fast_mem r'' (tup 3 10)
    && (not (Relation.fast_mem r'' (tup 1 10)))
    && Relation.fast_mem r (tup 1 10))

let prop_index_matches_filter =
  QCheck.Test.make ~name:"index probe = filter on random relations" ~count:100
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let r =
        Workload.Random_db.relation rng
          (Schema.make "R" [ "a"; "b"; "c" ])
          ~rows:30 ~domain:6
      in
      let col = Random.State.int rng 3 in
      let v = Value.Int (Random.State.int rng 6) in
      Relation.select_eq r col v
      = Relation.to_list (Relation.filter (fun t -> Tuple.get t col = v) r))

(* ---------- indexed CQ evaluation ---------- *)

let prop_indexed_cq_agrees =
  QCheck.Test.make
    ~name:"random CQ: Indexed = Greedy = Textual = generic FO" ~count:80
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db =
        Workload.Random_db.database rng
          ~specs:[ ("R", 2); ("S", 2); ("T", 1) ]
          ~rows:8 ~domain:4
      in
      let q = Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4 in
      let reference = Qlang.Fo_eval.eval_query db q in
      List.for_all
        (fun strategy ->
          Relation.equal reference (Qlang.Cq_eval.eval ~strategy db q))
        [ Qlang.Cq_eval.Indexed; Qlang.Cq_eval.Greedy; Qlang.Cq_eval.Textual ])

(* ---------- candidate / compatibility memo ---------- *)

let random_instance seed =
  let rng = Random.State.make [| seed |] in
  let db =
    Workload.Random_db.database rng
      ~specs:[ ("R", 2); ("S", 2) ]
      ~rows:10 ~domain:4
  in
  let q = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
  Instance.make ~db ~select:(Qlang.Query.Fo q) ~cost:Rating.card_or_infinite
    ~value:(Rating.sum_col ~nonneg:true 0) ~budget:3. ()

let prop_candidates_cached_eq_uncached =
  QCheck.Test.make ~name:"candidates: memoized = fresh evaluation" ~count:80
    seed_gen (fun seed ->
      let inst = random_instance seed in
      let cached = Instance.candidates inst in
      Relation.equal cached (Instance.candidates_uncached inst)
      (* Second read hits the memo and must not drift. *)
      && Relation.equal cached (Instance.candidates inst))

let test_memo_reset_on_update () =
  let inst = Workload.Teams.team_instance () in
  let before = Instance.candidates inst in
  (* Drop every expert: the adjusted instance must recompute Q(D) rather
     than serve the old memo. *)
  let empty_db =
    Database.of_relations
      [
        Relation.empty Workload.Teams.expert_schema;
        Relation.empty Workload.Teams.conflict_schema;
      ]
  in
  let inst' = Instance.with_db inst empty_db in
  check "original has candidates" false (Relation.is_empty before);
  check "with_db recomputes" true (Relation.is_empty (Instance.candidates inst'));
  let inst'' = Instance.with_select inst (Qlang.Query.Identity "conflict") in
  check "with_select recomputes" true
    (Relation.equal (Instance.candidates inst'')
       (Instance.candidates_uncached inst''))

let test_memo_compat () =
  let inst = Workload.Teams.team_instance () in
  let calls = ref 0 in
  let verdict () = incr calls; true in
  let p = Package.of_tuples [ tup 1 1 ] in
  check "first call computes" true (Instance.memo_compat inst p verdict);
  check "second call cached" true (Instance.memo_compat inst p verdict);
  check_int "compute ran once" 1 !calls

(* ---------- one-pass Bindings.extend ---------- *)

let prop_extend_cardinality =
  QCheck.Test.make
    ~name:"extend: |result| = |b| * |adom|^missing, vars merged" ~count:100
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nadom = 1 + Random.State.int rng 4 in
      let adom = List.init nadom (fun i -> Value.Int i) in
      let nrows = Random.State.int rng 5 in
      let rows =
        List.init nrows (fun _ ->
            Tuple.of_ints
              [ Random.State.int rng nadom; Random.State.int rng nadom ])
      in
      let b = Qlang.Bindings.make [ "x"; "z" ] rows in
      let b' = Qlang.Bindings.extend ~adom:(lazy adom) [ "w"; "y"; "x" ] b in
      let distinct = Qlang.Bindings.cardinal b in
      Qlang.Bindings.vars b' = [| "w"; "x"; "y"; "z" |]
      && Qlang.Bindings.cardinal b' = distinct * nadom * nadom)

let test_extend_values () =
  let adom = [ Value.Int 0; Value.Int 1 ] in
  let b = Qlang.Bindings.make [ "x" ] [ Tuple.of_ints [ 7 ] ] in
  let b' = Qlang.Bindings.extend ~adom:(lazy adom) [ "y" ] b in
  let expected =
    [
      [ ("x", Value.Int 7); ("y", Value.Int 0) ];
      [ ("x", Value.Int 7); ("y", Value.Int 1) ];
    ]
  in
  check "assignments enumerated" true
    (List.sort compare (Qlang.Bindings.assignments b')
    = List.sort compare expected)

(* ---------- domain pool ---------- *)

let test_pool_map () =
  check "default domains >= 1" true (Pool.default_domains () >= 1);
  let sq = Pool.map ~domains:4 20 (fun i -> i * i) in
  check "map preserves index order" true
    (sq = List.init 20 (fun i -> i * i));
  check "map with one domain" true
    (Pool.map ~domains:1 5 (fun i -> i) = [ 0; 1; 2; 3; 4 ]);
  check "map of zero items" true (Pool.map ~domains:4 0 (fun i -> i) = [])

let test_pool_find_first () =
  (* Several hits: the least index must win regardless of scheduling. *)
  let hits = [ 7; 3; 11 ] in
  let f i = if List.mem i hits then Some (i * 100) else None in
  check "least-index witness" true (Pool.find_first ~domains:4 16 f = Some 300);
  check "sequential agrees" true (Pool.find_first ~domains:1 16 f = Some 300);
  check "no hit" true (Pool.find_first ~domains:4 16 (fun _ -> None) = None)

let test_pool_exception () =
  match Pool.map ~domains:4 8 (fun i -> if i = 5 then failwith "boom" else i) with
  | exception Failure m -> check "worker exception propagates" true (m = "boom")
  | _ -> Alcotest.fail "expected Failure"

(* ---------- deterministic multicore search ---------- *)

let team_search_instance seed n =
  let rng = Random.State.make [| seed |] in
  let db = Workload.Teams.random_db rng ~nexperts:n ~nconflicts:(n / 2) in
  Instance.make ~db
    ~select:(Qlang.Query.Fo (Workload.Teams.experts_with_skill "backend"))
    ~compat:(Instance.Compat_query Workload.Teams.no_conflicts)
    ~cost:Workload.Teams.salary_cost ~value:Workload.Teams.score_value
    ~budget:1e9 ()

let prop_domains_deterministic =
  QCheck.Test.make ~name:"all_valid/search: domains=1 = domains=4" ~count:20
    seed_gen (fun seed ->
      let inst = team_search_instance seed 24 in
      let c1 = Exist_pack.ctx ~domains:1 inst in
      let c4 = Exist_pack.ctx ~domains:4 inst in
      let v1 = Exist_pack.all_valid c1 and v4 = Exist_pack.all_valid c4 in
      let bound = 10. in
      let s1 = Exist_pack.search c1 ~bound ()
      and s4 = Exist_pack.search c4 ~bound () in
      List.equal Package.equal v1 v4
      && Option.equal Package.equal s1 s4
      && Exist_pack.domains c4 = 4)

let prop_frp_domains_deterministic =
  QCheck.Test.make ~name:"Frp.enumerate: domains=1 = domains=4" ~count:10
    seed_gen (fun seed ->
      let inst = team_search_instance seed 20 in
      let r1 = Frp.enumerate ~ctx:(Exist_pack.ctx ~domains:1 inst) inst ~k:2 in
      let r4 = Frp.enumerate ~ctx:(Exist_pack.ctx ~domains:4 inst) inst ~k:2 in
      Option.equal (List.equal Package.equal) r1 r4)

(* ---------- SAT trail ---------- *)

(* Regression: a unit clause propagated at the root, then a branch whose
   first arm fails and whose second succeeds.  Flipping the decision must
   not unwind the propagated x1 (its clause is gone from the simplified
   clause set, so it could never be re-derived); a solver that over-unwinds
   returns a "model" with x1 unassigned/false that falsifies [[1]]. *)
let test_sat_unit_backtrack () =
  let cnf = Solvers.Cnf.make ~nvars:3 [ [ 1 ]; [ 2; 3 ]; [ -2; -3 ]; [ -2; 3 ] ] in
  match Solvers.Sat.solve cnf with
  | None -> Alcotest.fail "formula is satisfiable (x1, ~x2, x3)"
  | Some model ->
      check "returned model satisfies the formula" true
        (Solvers.Cnf.holds cnf model)

(* Random CNFs mixing 3-clauses with unit clauses, so unit propagation
   actually fires before decisions (pure random 3-SAT rarely exercises the
   propagate-then-backtrack interaction). *)
let prop_sat_trail_vs_bruteforce =
  QCheck.Test.make ~name:"DPLL with trail = brute force" ~count:150 seed_gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nvars = 3 + Random.State.int rng 4 in
      let clauses =
        List.init
          (2 + Random.State.int rng 8)
          (fun _ ->
            if Random.State.int rng 4 = 0 then
              [ Solvers.Gen.literal rng ~nvars ]
            else Solvers.Gen.clause3 rng ~nvars)
      in
      let cnf = Solvers.Cnf.make ~nvars clauses in
      let brute = Solvers.Cnf.brute_force_sat cnf in
      match Solvers.Sat.solve cnf with
      | Some model ->
          Option.is_some brute && Solvers.Cnf.holds cnf model
      | None -> Option.is_none brute)

let () =
  Alcotest.run "fastpath"
    [
      ( "intern",
        [ Alcotest.test_case "pool round trips" `Quick test_intern ] );
      ( "indexes",
        [
          Alcotest.test_case "probe" `Quick test_index_probe;
          Alcotest.test_case "invalidation on add/remove" `Quick
            test_index_invalidation;
          QCheck_alcotest.to_alcotest prop_index_matches_filter;
        ] );
      ( "indexed-cq",
        [ QCheck_alcotest.to_alcotest prop_indexed_cq_agrees ] );
      ( "memo",
        [
          QCheck_alcotest.to_alcotest prop_candidates_cached_eq_uncached;
          Alcotest.test_case "reset on with_db/with_select" `Quick
            test_memo_reset_on_update;
          Alcotest.test_case "compat verdict cached" `Quick test_memo_compat;
        ] );
      ( "extend",
        [
          QCheck_alcotest.to_alcotest prop_extend_cardinality;
          Alcotest.test_case "values enumerated" `Quick test_extend_values;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "find_first" `Quick test_pool_find_first;
          Alcotest.test_case "exceptions" `Quick test_pool_exception;
        ] );
      ( "domains",
        [
          QCheck_alcotest.to_alcotest prop_domains_deterministic;
          QCheck_alcotest.to_alcotest prop_frp_domains_deterministic;
        ] );
      ( "sat-trail",
        [
          Alcotest.test_case "unit propagation survives backtrack" `Quick
            test_sat_unit_backtrack;
          QCheck_alcotest.to_alcotest prop_sat_trail_vs_bruteforce;
        ] );
    ]
