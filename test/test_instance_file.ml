(* Tests for the instance-file format: parsing, printing round trips, error
   reporting, and semantic fidelity of the loaded instances. *)

module Relation = Relational.Relation
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample =
  {|# a tiny instance
[database]
R(id,w)
1,5
2,3
3,8

[select]
Q(i, w) := R(i, w) & w > 2

[compat]
Qc() := exists a, w1, b, w2. RQ(a, w1) & RQ(b, w2) & w1 = w2 & a != b

[cost]
card

[value]
sum(1)

[budget]
2
|}

let test_parse_and_solve () =
  let spec = Instance_file.parse sample in
  let inst = Instance_file.to_instance spec in
  check_int "candidates" 3 (Relation.cardinal (Instance.candidates inst));
  check "compat present" true (Instance.has_compat inst);
  match Frp.enumerate inst ~k:1 with
  | Some [ best ] ->
      Alcotest.(check (float 1e-9)) "best rating" 13.
        (Rating.eval inst.Instance.value best)
  | _ -> Alcotest.fail "expected a top-1"

let test_round_trip () =
  let spec = Instance_file.parse sample in
  let spec' = Instance_file.parse (Instance_file.to_string spec) in
  let i1 = Instance_file.to_instance spec in
  let i2 = Instance_file.to_instance spec' in
  check "same candidates" true
    (Relation.equal (Instance.candidates i1) (Instance.candidates i2));
  check "same budget" true (i1.Instance.budget = i2.Instance.budget);
  check "same top-1" true (Frp.enumerate i1 ~k:1 = Frp.enumerate i2 ~k:1)

let test_datalog_select () =
  let src =
    {|[database]
E(s,d)
1,2
2,3

[select-datalog]
T(x, y) :- E(x, y).
T(x, z) :- E(x, y), T(y, z).
?- T.

[cost]
card

[value]
count

[budget]
1
|}
  in
  let spec = Instance_file.parse src in
  let inst = Instance_file.to_instance spec in
  check "datalog language" true (Instance.language inst = Qlang.Query.L_datalog);
  check_int "TC size" 3 (Relation.cardinal (Instance.candidates inst));
  (* and it round-trips *)
  let spec' = Instance_file.parse (Instance_file.to_string spec) in
  check "datalog round trip" true
    (Relation.equal
       (Instance.candidates inst)
       (Instance.candidates (Instance_file.to_instance spec')))

let test_size_bound_section () =
  let with_bound b =
    Instance_file.parse (sample ^ "\n[size-bound]\n" ^ b ^ "\n")
  in
  check "const" true ((with_bound "const 2").Instance_file.s_size = Size_bound.Const 2);
  check "poly" true
    ((with_bound "poly 2 1").Instance_file.s_size
    = Size_bound.Poly { coeff = 2; degree = 1 });
  check "default linear" true
    ((Instance_file.parse sample).Instance_file.s_size = Size_bound.linear)

let expect_failure ~containing src =
  try
    ignore (Instance_file.parse src);
    Alcotest.failf "expected failure mentioning %s" containing
  with Failure msg ->
    let contains_sub hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check ("error mentions " ^ containing) true (contains_sub msg containing)

let test_errors () =
  expect_failure ~containing:"[select]" "[database]\nR(a)\n1\n[cost]\ncard\n[value]\ncount\n[budget]\n1\n";
  expect_failure ~containing:"[budget]"
    "[database]\nR(a)\n1\n[select]\nQ(x) := R(x)\n[cost]\ncard\n[value]\ncount\n[budget]\nmany\n";
  expect_failure ~containing:"[value]"
    "[database]\nR(a)\n1\n[select]\nQ(x) := R(x)\n[cost]\ncard\n[value]\nbogus()\n[budget]\n1\n";
  expect_failure ~containing:"[select]"
    "[database]\nR(a)\n1\n[select]\nQ(x := R(x)\n[cost]\ncard\n[value]\ncount\n[budget]\n1\n";
  expect_failure ~containing:"[size-bound]"
    (sample ^ "\n[size-bound]\ncubic\n")

let test_unknown_section_rejected () =
  (* A typoed or stray header must fail loudly, not be silently skipped
     (its body would otherwise be swallowed as unparsed noise). *)
  expect_failure ~containing:"unknown section"
    (sample ^ "\n[bonus]\nstuff\n");
  expect_failure ~containing:"unknown section"
    (sample ^ "\n[bugdet]\n4\n")

let test_duplicate_section_rejected () =
  (* A duplicate would shadow one body or the other depending on parse
     order — ambiguous input, so it is an error. *)
  expect_failure ~containing:"duplicate section" (sample ^ "\n[budget]\n4\n");
  (* headers are case-insensitive, so a recased duplicate is still one *)
  expect_failure ~containing:"duplicate section" (sample ^ "\n[Budget]\n4\n");
  expect_failure ~containing:"duplicate section"
    (sample ^ "\n[select]\nQ(i, w) := R(i, w)\n")

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Database = Relational.Database

let hostile_spec strings =
  let sch = Schema.make "S" [ "id"; "s" ] in
  let rows =
    List.mapi (fun i s -> Tuple.of_list [ Value.Int i; Value.Str s ]) strings
  in
  {
    Instance_file.s_db = Database.of_relations [ Relation.of_list sch rows ];
    s_select =
      Qlang.Query.Fo (Qlang.Parser.parse_query "Q(i, s) := S(i, s)");
    s_compat = None;
    s_cost = Rating_expr.E_count;
    s_value = Rating_expr.E_count;
    s_budget = 2.;
    s_size = Size_bound.linear;
    s_dists = [];
  }

let test_adversarial_round_trip () =
  (* String data whose printed form collides with the file grammar:
     newlines, quotes, backslashes, comment markers, section headers and
     relation-header shapes.  All of it must survive to_string/parse. *)
  let nasty =
    [ "line\nbreak"; "a\"b\"c"; "\\"; "x,y"; "]"; "[database]"; "[budget]";
      "R(a,b)"; "# not a comment"; "  padded  " ]
  in
  let spec = hostile_spec nasty in
  let spec' = Instance_file.parse (Instance_file.to_string spec) in
  check "database survives" true
    (Database.equal spec.Instance_file.s_db spec'.Instance_file.s_db);
  let i1 = Instance_file.to_instance spec
  and i2 = Instance_file.to_instance spec' in
  check "candidates survive" true
    (Relation.equal (Instance.candidates i1) (Instance.candidates i2))

let test_query_constant_round_trip () =
  (* A hostile string constant inside the select query itself: the query
     pretty-printer emits an escaped literal and the lexer must decode it
     back to the same constant. *)
  let nasty = [ "line\nbreak"; "plain" ] in
  let select =
    Qlang.Query.Fo
      (Qlang.Parser.parse_query
         {|Q(i, s) := S(i, s) & s != "line\nbreak"|})
  in
  let spec = { (hostile_spec nasty) with Instance_file.s_select = select } in
  let spec' = Instance_file.parse (Instance_file.to_string spec) in
  let i1 = Instance_file.to_instance spec
  and i2 = Instance_file.to_instance spec' in
  let c1 = Instance.candidates i1 and c2 = Instance.candidates i2 in
  (* the constant filters out exactly the row carrying the newline *)
  check_int "one candidate left" 1 (Relation.cardinal c1);
  check "filtered equally" true (Relation.equal c1 c2)

let hostile_string_gen =
  QCheck.string_gen_of_size (QCheck.Gen.int_bound 6)
    (QCheck.Gen.oneofl
       [ 'a'; '"'; '\\'; ','; '\n'; '#'; '['; ']'; '('; ')'; ' ' ])

let prop_spec_round_trip =
  QCheck.Test.make ~name:"instance file round trip with hostile strings"
    ~count:150
    QCheck.(small_list hostile_string_gen)
    (fun ss ->
      let spec = hostile_spec ss in
      let spec' = Instance_file.parse (Instance_file.to_string spec) in
      Database.equal spec.Instance_file.s_db spec'.Instance_file.s_db
      && spec'.Instance_file.s_budget = 2.)

let test_distances_section () =
  let spec =
    Instance_file.parse (sample ^ "\n[distances]\nnum numeric\nflag discrete\n")
  in
  check_int "two distance functions" 2 (List.length spec.Instance_file.s_dists);
  let inst = Instance_file.to_instance spec in
  check "numeric installed" true
    (Qlang.Dist.find_opt inst.Instance.dist "num" <> None);
  (* round trip keeps the section *)
  let spec' = Instance_file.parse (Instance_file.to_string spec) in
  check "distances round trip" true
    (spec'.Instance_file.s_dists = spec.Instance_file.s_dists);
  expect_failure ~containing:"[distances]" (sample ^ "\n[distances]\nnum euclid\n")

let test_travel_instance_file () =
  (* a realistic file built from the travel workload, shipped through the
     format and solved *)
  let spec =
    {
      Instance_file.s_db = Workload.Travel.db;
      s_select = Qlang.Query.Fo (Workload.Travel.package_query "edi" "nyc" 3);
      s_compat = Some Workload.Travel.at_most_two_museums;
      s_cost = Rating_expr.E_sum 5;
      s_value = Rating_expr.(E_sub (E_mul (E_const 150., E_count), E_sum 4));
      s_budget = 600.;
      s_size = Size_bound.linear;
      s_dists = [ ("days", Instance_file.D_numeric) ];
    }
  in
  let inst = Instance_file.to_instance spec in
  let inst' =
    Instance_file.to_instance (Instance_file.parse (Instance_file.to_string spec))
  in
  check "travel candidates round trip" true
    (Relation.equal (Instance.candidates inst) (Instance.candidates inst'));
  match Frp.enumerate inst' ~k:1 with
  | Some [ best ] -> check "non-trivial plan" true (Package.size best >= 3)
  | _ -> Alcotest.fail "expected a plan"

let () =
  Alcotest.run "instance-file"
    [
      ( "format",
        [
          Alcotest.test_case "parse and solve" `Quick test_parse_and_solve;
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "datalog select" `Quick test_datalog_select;
          Alcotest.test_case "size-bound section" `Quick test_size_bound_section;
          Alcotest.test_case "error reporting" `Quick test_errors;
          Alcotest.test_case "distances section" `Quick test_distances_section;
          Alcotest.test_case "travel instance" `Quick test_travel_instance_file;
        ] );
      ( "hostile-input",
        [
          Alcotest.test_case "unknown section rejected" `Quick
            test_unknown_section_rejected;
          Alcotest.test_case "duplicate section rejected" `Quick
            test_duplicate_section_rejected;
          Alcotest.test_case "adversarial strings round trip" `Quick
            test_adversarial_round_trip;
          Alcotest.test_case "query constants round trip" `Quick
            test_query_constant_round_trip;
          QCheck_alcotest.to_alcotest prop_spec_round_trip;
        ] );
    ]
