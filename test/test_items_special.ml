(* Tests for item recommendations (Section 2 / Theorem 6.4) and the
   tractable special cases of Section 6 (constant package bounds, the
   item-package encoding equivalence, SP fast paths). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "R" [ "id"; "score" ])
        [ [ 1; 5 ]; [ 2; 3 ]; [ 3; 8 ]; [ 4; 8 ]; [ 5; 1 ] ];
    ]

let utility =
  {
    Items.u_name = "score";
    u_eval = (fun t -> float_of_int (Value.int_exn (Tuple.get t 1)));
  }

let it = Items.make ~db ~select:(Qlang.Query.Identity "R") ~utility ()

let tup id score = Tuple.of_ints [ id; score ]

let test_items_topk () =
  (match Items.topk it ~k:2 with
  | Some [ a; b ] ->
      check "both score 8" true
        (utility.Items.u_eval a = 8. && utility.Items.u_eval b = 8.)
  | _ -> Alcotest.fail "expected two items");
  check "k = 6 impossible" true (Items.topk it ~k:6 = None);
  match Items.topk it ~k:5 with
  | Some items -> check_int "all five" 5 (List.length items)
  | None -> Alcotest.fail "expected five items"

let test_items_is_topk () =
  check "the two 8s" true (Items.is_topk it [ tup 3 8; tup 4 8 ]);
  check "8 and 5" false (Items.is_topk it [ tup 3 8; tup 1 5 ]);
  check "single 8 ok" true (Items.is_topk it [ tup 3 8 ]);
  check "other single 8 ok" true (Items.is_topk it [ tup 4 8 ]);
  check "duplicates" false (Items.is_topk it [ tup 3 8; tup 3 8 ]);
  check "non-member" false (Items.is_topk it [ tup 9 8 ]);
  check "empty" false (Items.is_topk it [])

let test_items_bounds_counts () =
  Alcotest.(check (option (float 1e-9))) "max bound k=1" (Some 8.) (Items.max_bound it ~k:1);
  Alcotest.(check (option (float 1e-9))) "max bound k=3" (Some 5.) (Items.max_bound it ~k:3);
  check "is_max_bound" true (Items.is_max_bound it ~k:3 ~bound:5.);
  check "not max" false (Items.is_max_bound it ~k:3 ~bound:4.);
  check_int "count >= 5" 3 (Items.count_ge it ~bound:5.);
  check_int "count >= 9" 0 (Items.count_ge it ~bound:9.)

(* The Section 2 encoding: item selections = package selections with
   Qc empty, cost = card/∞, C = 1, val({s}) = f(s). *)
let test_items_package_encoding () =
  let inst = Items.to_package_instance it in
  check "size bound 1" true (inst.Instance.size_bound = Size_bound.Const 1);
  (match Items.topk it ~k:3, Frp.enumerate inst ~k:3 with
  | Some items, Some packages ->
      let ivals = List.map utility.Items.u_eval items in
      let pvals = List.map (Rating.eval inst.Instance.value) packages in
      check "same ratings" true (ivals = pvals);
      check "packages are singletons" true
        (List.for_all (fun p -> Package.size p = 1) packages)
  | _ -> Alcotest.fail "both should succeed");
  (* decision problems agree *)
  check "is_topk agrees" true
    (Items.is_topk it [ tup 3 8 ]
    = Rpp.is_topk inst [ Package.singleton (tup 3 8) ]);
  check "max bound agrees" true
    (Items.max_bound it ~k:2 = Mbp.max_bound inst ~k:2);
  check_int "counting agrees" (Items.count_ge it ~bound:5.)
    (Cpp.count inst ~bound:5.)

let prop_items_encoding_equivalence =
  QCheck.Test.make ~name:"items = singleton packages on random data" ~count:50
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rel =
        Relation.of_list (Schema.make "R" [ "id"; "score" ])
          (List.init
             (3 + Random.State.int rng 5)
             (fun i -> Tuple.of_ints [ i; Random.State.int rng 9 ]))
      in
      let it =
        Items.make
          ~db:(Database.of_relations [ rel ])
          ~select:(Qlang.Query.Identity "R") ~utility ()
      in
      let inst = Items.to_package_instance it in
      let k = 1 + Random.State.int rng 3 in
      match Items.topk it ~k, Frp.enumerate inst ~k with
      | None, None -> true
      | Some items, Some pkgs ->
          List.map utility.Items.u_eval items
          = List.map (Rating.eval inst.Instance.value) pkgs
      | _ -> false)

(* ---------- Corollary 6.1: constant bounds ---------- *)

let const_inst bp =
  Instance.make ~db ~select:(Qlang.Query.Identity "R")
    ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget:(float_of_int bp) ~size_bound:(Size_bound.Const bp) ()

let test_special_wrappers () =
  let inst = const_inst 2 in
  (match Special.topk inst ~k:1 with
  | Some [ p ] ->
      Alcotest.(check (float 1e-9)) "best pair 8+8" 16.
        (Rating.eval inst.Instance.value p)
  | _ -> Alcotest.fail "expected one package");
  check "is_topk" true
    (Special.is_topk inst [ Package.of_tuples [ tup 3 8; tup 4 8 ] ]);
  Alcotest.(check (option (float 1e-9))) "max bound" (Some 16.) (Special.max_bound inst ~k:1);
  check "is_max_bound" true (Special.is_max_bound inst ~k:1 ~bound:16.);
  check_int "count >= 13" 3 (Special.count inst ~bound:13.)

let test_special_requires_const () =
  let inst = { (const_inst 2) with Instance.size_bound = Size_bound.linear } in
  Alcotest.check_raises "poly bound rejected"
    (Invalid_argument "Special: instance does not have a constant package-size bound")
    (fun () -> ignore (Special.topk inst ~k:1))

let prop_special_agrees_with_general =
  QCheck.Test.make ~name:"constant-bound solvers = general solvers" ~count:40
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rel =
        Relation.of_list (Schema.make "R" [ "id"; "score" ])
          (List.init
             (3 + Random.State.int rng 4)
             (fun i -> Tuple.of_ints [ i; Random.State.int rng 9 ]))
      in
      let bp = 1 + Random.State.int rng 2 in
      let inst =
        Instance.make
          ~db:(Database.of_relations [ rel ])
          ~select:(Qlang.Query.Identity "R") ~cost:Rating.card_or_infinite
          ~value:(Rating.sum_col ~nonneg:true 1)
          ~budget:(float_of_int bp)
          ~size_bound:(Size_bound.Const bp) ()
      in
      let bound = float_of_int (seed mod 10) in
      Special.count inst ~bound = Cpp.count inst ~bound
      && Special.max_bound inst ~k:2 = Mbp.max_bound inst ~k:2)

(* Constant bound really is enforced: packages above the bound are not
   valid even when affordable. *)
let test_const_bound_enforced () =
  let inst = { (const_inst 2) with Instance.budget = 10. } in
  check "triple invalid" false
    (Validity.valid inst (Package.of_tuples [ tup 1 5; tup 2 3; tup 3 8 ]));
  check "pair valid" true (Validity.valid inst (Package.of_tuples [ tup 1 5; tup 2 3 ]))

let () =
  Alcotest.run "items-special"
    [
      ( "items",
        [
          Alcotest.test_case "topk" `Quick test_items_topk;
          Alcotest.test_case "is_topk" `Quick test_items_is_topk;
          Alcotest.test_case "bounds and counts" `Quick test_items_bounds_counts;
          Alcotest.test_case "package encoding" `Quick test_items_package_encoding;
          QCheck_alcotest.to_alcotest prop_items_encoding_equivalence;
        ] );
      ( "special",
        [
          Alcotest.test_case "constant-bound wrappers" `Quick test_special_wrappers;
          Alcotest.test_case "requires constant bound" `Quick test_special_requires_const;
          Alcotest.test_case "bound enforcement" `Quick test_const_bound_enforced;
          QCheck_alcotest.to_alcotest prop_special_agrees_with_general;
        ] );
    ]
