(* One package-recommendation instance per query language of Section 2 —
   SP, CQ, UCQ, ∃FO⁺, FO, DATALOGnr and DATALOG — as selection criteria,
   plus compatibility constraints expressed in CQ, FO and DATALOG.  These
   pin the language routing (classification → evaluator → solvers) across
   the whole matrix the paper's tables range over.

   The shared database is a small labelled graph:
     E(src, dst)       — edges
     L(node, score)    — node scores. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_lang = Alcotest.(check string)

let db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "E" [ "src"; "dst" ])
        [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 1; 3 ] ];
      Relation.of_int_rows (Schema.make "L" [ "node"; "score" ])
        [ [ 1; 5 ]; [ 2; 7 ]; [ 3; 2 ]; [ 4; 9 ] ];
    ]

let instance ?compat select =
  Instance.make ~db ~select ?compat ~cost:Rating.card_or_infinite
    ~value:(Rating.sum_col ~nonneg:true 1) ~budget:2. ()

let lang inst = Qlang.Query.lang_to_string (Instance.language inst)

let q = Qlang.Parser.parse_query
let p = Qlang.Parser.parse_program

(* -------- SP -------- *)

let test_sp_select () =
  let inst = instance (Qlang.Query.Fo (q "Q(n, s) := L(n, s) & s > 2")) in
  check_lang "language" "SP" (lang inst);
  check_int "candidates" 3 (Relation.cardinal (Instance.candidates inst));
  (* best pair: 7 + 9 *)
  match Frp.enumerate inst ~k:1 with
  | Some [ best ] ->
      Alcotest.(check (float 1e-9)) "top rating" 16.
        (Rating.eval inst.Instance.value best)
  | _ -> Alcotest.fail "expected a top-1"

(* -------- CQ -------- *)

let test_cq_select () =
  (* nodes with an outgoing edge, with their scores *)
  let inst =
    instance (Qlang.Query.Fo (q "Q(n, s) := exists m. E(n, m) & L(n, s)"))
  in
  check_lang "language" "CQ" (lang inst);
  check_int "candidates" 3 (Relation.cardinal (Instance.candidates inst));
  Alcotest.(check (option (float 1e-9))) "max bound k=1" (Some 12.)
    (Mbp.max_bound inst ~k:1)

(* -------- UCQ -------- *)

let test_ucq_select () =
  (* sources or sinks *)
  let inst =
    instance
      (Qlang.Query.Fo
         (q
            "Q(n, s) := (exists m. E(n, m) & L(n, s)) | (exists m. E(m, n) & \
             L(n, s))"))
  in
  check_lang "language" "UCQ" (lang inst);
  check_int "all four nodes" 4 (Relation.cardinal (Instance.candidates inst));
  check_int "count >= 16" 1 (Cpp.count inst ~bound:16.)

(* -------- ∃FO⁺ -------- *)

let test_efo_select () =
  (* conjunction over a disjunction — positive existential but not UCQ *)
  let inst =
    instance
      (Qlang.Query.Fo
         (q "Q(n, s) := L(n, s) & (exists m. (E(n, m) | E(m, n)) & L(m, 7))"))
  in
  check_lang "language" "∃FO+" (lang inst);
  (* nodes adjacent to node 2 (score 7): 1 and 3 *)
  check_int "adjacent to the 7-node" 2 (Relation.cardinal (Instance.candidates inst))

(* -------- FO -------- *)

let test_fo_select () =
  (* sinks: nodes with no outgoing edge *)
  let inst =
    instance (Qlang.Query.Fo (q "Q(n, s) := L(n, s) & not (exists m. E(n, m))"))
  in
  check_lang "language" "FO" (lang inst);
  let cands = Instance.candidates inst in
  check_int "one sink" 1 (Relation.cardinal cands);
  check "it is node 4" true (Relation.mem (Tuple.of_ints [ 4; 9 ]) cands)

(* -------- DATALOGnr -------- *)

let test_datalognr_select () =
  let prog =
    p
      "Hop2(n, s) :- E(n, m), E(m, o), L(o, s). Good(n, s) :- Hop2(n, s), s > 1. \
       ?- Good."
  in
  let inst = instance (Qlang.Query.Dl prog) in
  check_lang "language" "DATALOGnr" (lang inst);
  (* 2-hop endpoints: 1->2->3 (2), 1->3->4 (9), 2->3->4 (9) *)
  check_int "two-hop pairs" 3 (Relation.cardinal (Instance.candidates inst))

(* -------- DATALOG -------- *)

let test_datalog_select () =
  let prog =
    p
      "T(x, y) :- E(x, y). T(x, z) :- E(x, y), T(y, z). R2(x, s) :- T(x, y), \
       L(y, s). ?- R2."
  in
  let inst = instance (Qlang.Query.Dl prog) in
  check_lang "language" "DATALOG" (lang inst);
  (* reachable-with-score pairs; node 1 reaches 2,3,4 etc. *)
  check_int "reach pairs" 6 (Relation.cardinal (Instance.candidates inst));
  (* the solvers run over a recursive selection *)
  match Frp.enumerate inst ~k:2 with
  | Some sel -> check "top-2 certified" true (Rpp.is_topk inst sel)
  | None -> Alcotest.fail "expected a top-2"

(* -------- compatibility constraints in three languages -------- *)

(* No two adjacent nodes in a package (RQ carries (node, score)). *)
let compat_cq =
  Instance.Compat_query
    (Qlang.Query.Fo
       (q
          "Qc() := exists n, s, m, s2. RQ(n, s) & RQ(m, s2) & E(n, m)"))

let compat_fo =
  Instance.Compat_query
    (Qlang.Query.Fo
       (q
          "Qc() := exists n, s. RQ(n, s) & not (forall m, s2. RQ(m, s2) -> (not \
           E(n, m)))"))

let compat_dl =
  Instance.Compat_query
    (Qlang.Query.Dl (p "Bad(n, m) :- RQ(n, s), RQ(m, s2), E(n, m). ?- Bad."))

let select_all_nodes = Qlang.Query.Fo (q "Q(n, s) := L(n, s)")

let test_compat_languages_agree () =
  let mk compat = instance ~compat select_all_nodes in
  let a = mk compat_cq and b = mk compat_fo and c = mk compat_dl in
  (* all pairs of nodes *)
  let nodes = Relation.to_list (Database.find db "L") in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let pkg = Package.of_tuples [ x; y ] in
          let va = Validity.compatible a pkg in
          check "CQ = FO constraint" true (va = Validity.compatible b pkg);
          check "CQ = DATALOG constraint" true (va = Validity.compatible c pkg))
        nodes)
    nodes;
  (* and a concrete case: {1, 2} adjacent, {1, 4} not *)
  check "adjacent rejected" false
    (Validity.compatible a (Package.of_tuples [ Tuple.of_ints [ 1; 5 ]; Tuple.of_ints [ 2; 7 ] ]));
  check "non-adjacent fine" true
    (Validity.compatible a (Package.of_tuples [ Tuple.of_ints [ 1; 5 ]; Tuple.of_ints [ 4; 9 ] ]))

let test_topk_under_datalog_compat () =
  let inst = instance ~compat:compat_dl select_all_nodes in
  match Frp.enumerate inst ~k:1 with
  | Some [ best ] ->
      (* best independent pair: 2 and 4 (7 + 9 = 16); 1-2, 2-3, 3-4, 1-3 edges *)
      Alcotest.(check (float 1e-9)) "best independent pair" 16.
        (Rating.eval inst.Instance.value best);
      check "certified" true (Rpp.is_topk inst [ best ])
  | _ -> Alcotest.fail "expected a top-1"

(* Per-language agreement of the two FO-family evaluators on the selects. *)
let test_evaluators_agree_on_selects () =
  List.iter
    (fun qstr ->
      let query = q qstr in
      if Qlang.Fragment.leq (Qlang.Fragment.classify_query query) Qlang.Fragment.Ucq
      then
        check ("planner agrees: " ^ qstr) true
          (Relation.equal
             (Qlang.Cq_eval.eval db query)
             (Qlang.Fo_eval.eval_query db query)))
    [
      "Q(n, s) := L(n, s) & s > 2";
      "Q(n, s) := exists m. E(n, m) & L(n, s)";
      "Q(n, s) := (exists m. E(n, m) & L(n, s)) | (exists m. E(m, n) & L(n, s))";
    ]

let () =
  Alcotest.run "languages"
    [
      ( "selects",
        [
          Alcotest.test_case "SP" `Quick test_sp_select;
          Alcotest.test_case "CQ" `Quick test_cq_select;
          Alcotest.test_case "UCQ" `Quick test_ucq_select;
          Alcotest.test_case "∃FO+" `Quick test_efo_select;
          Alcotest.test_case "FO" `Quick test_fo_select;
          Alcotest.test_case "DATALOGnr" `Quick test_datalognr_select;
          Alcotest.test_case "DATALOG" `Quick test_datalog_select;
        ] );
      ( "compat",
        [
          Alcotest.test_case "CQ = FO = DATALOG constraints" `Quick
            test_compat_languages_agree;
          Alcotest.test_case "top-k under DATALOG Qc" `Quick
            test_topk_under_datalog_compat;
          Alcotest.test_case "evaluators agree" `Quick test_evaluators_agree_on_selects;
        ] );
    ]
