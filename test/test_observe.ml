(* Tests for the Observe telemetry library and its integration points:
   counters, timers, spans, capture/absorb, deterministic accounting under
   the parallel Pool, the DPLL solver's event counts, and PKG_DOMAINS
   parsing. *)

module Value = Relational.Value
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count name snap =
  match List.assoc_opt name snap with
  | Some (Observe.Count n) -> n
  | Some (Observe.Span { entries; _ }) -> entries
  | None -> 0

(* Every test runs with tracing force-enabled and a clean slate, and
   leaves the switch off so the rest of the binary is unaffected. *)
let traced f () =
  Observe.set_enabled true;
  Observe.reset ();
  Fun.protect ~finally:(fun () -> Observe.set_enabled false) f

(* ---------- counters and timers ---------- *)

let c_basic = Observe.counter "test.basic"
let t_outer = Observe.timer "test.outer"
let t_inner = Observe.timer "test.inner"

let test_counter_basics () =
  Observe.bump c_basic;
  Observe.add c_basic 4;
  check_int "bump + add" 5 (count "test.basic" (Observe.snapshot ()));
  Observe.reset ();
  check_int "reset zeroes" 0 (count "test.basic" (Observe.snapshot ()))

let test_registration_idempotent () =
  let c1 = Observe.counter "test.same" in
  let c2 = Observe.counter "test.same" in
  Observe.bump c1;
  Observe.bump c2;
  check_int "one cell behind the name" 2
    (count "test.same" (Observe.snapshot ()));
  match Observe.timer "test.same" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-registering as the other kind must be rejected"

let test_disabled_is_noop () =
  Observe.set_enabled false;
  Observe.bump c_basic;
  Observe.add c_basic 10;
  let r = Observe.span t_outer (fun () -> 42) in
  Observe.set_enabled true;
  check_int "span still runs the thunk" 42 r;
  check_int "nothing recorded" 0 (count "test.basic" (Observe.snapshot ()));
  check_int "no span entries" 0 (count "test.outer" (Observe.snapshot ()))

let test_span_nesting () =
  let r =
    Observe.span t_outer (fun () ->
        Observe.span t_inner (fun () -> Observe.span t_inner (fun () -> 7)))
  in
  check_int "result through spans" 7 r;
  let snap = Observe.snapshot () in
  check_int "outer entries" 1 (count "test.outer" snap);
  check_int "inner entries" 2 (count "test.inner" snap);
  (match List.assoc "test.outer" snap with
  | Observe.Span { seconds; _ } -> check "duration nonneg" true (seconds >= 0.)
  | _ -> Alcotest.fail "timer snapshots as a span")

let test_span_records_on_raise () =
  (match Observe.span t_outer (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception must propagate");
  check_int "entry recorded despite the raise" 1
    (count "test.outer" (Observe.snapshot ()))

let test_capture_absorb () =
  let r, d = Observe.capture (fun () -> Observe.bump c_basic; 42) in
  check_int "captured result" 42 r;
  check_int "events diverted, not global" 0
    (count "test.basic" (Observe.snapshot ()));
  Observe.absorb d;
  check_int "absorb replays" 1 (count "test.basic" (Observe.snapshot ()));
  (* a discarded capture simply never lands *)
  let _, d' = Observe.capture (fun () -> Observe.add c_basic 100) in
  ignore d';
  check_int "discard drops" 1 (count "test.basic" (Observe.snapshot ()))

let test_diff_nonzero () =
  let before = Observe.snapshot () in
  Observe.add c_basic 3;
  let d = Observe.diff before (Observe.snapshot ()) in
  check_int "diff isolates the increment" 3 (count "test.basic" d);
  let nz = Observe.nonzero d in
  check "zeros dropped" true
    (List.for_all (function _, Observe.Count 0 -> false | _ -> true) nz);
  check "increment kept" true (List.mem_assoc "test.basic" nz)

let test_rendering () =
  Observe.add c_basic 2;
  let snap = Observe.nonzero (Observe.snapshot ()) in
  let text = Observe.to_text snap in
  let json = Observe.to_json snap in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check "text groups by prefix" true (contains text "test:");
  check "text has the counter" true (contains text "test.basic");
  check "json object" true
    (String.length json >= 2 && json.[0] = '{'
    && json.[String.length json - 1] = '}');
  check "json has the counter" true (contains json "\"test.basic\": 2")

(* ---------- deterministic accounting under Pool ---------- *)

let c_work = Observe.counter "test.work"

let test_pool_map_deterministic () =
  let totals =
    List.map
      (fun domains ->
        Observe.reset ();
        let r = Parallel.Pool.map ~domains 20 (fun i -> Observe.bump c_work; i) in
        check "map result" true (r = List.init 20 Fun.id);
        (count "test.work" (Observe.snapshot ()),
         count "pool.tasks" (Observe.snapshot ())))
      [ 1; 4 ]
  in
  List.iter
    (fun (work, tasks) ->
      check_int "every task counted once" 20 work;
      check_int "pool.tasks matches" 20 tasks)
    totals

let test_pool_find_first_deterministic () =
  (* the speculative losers of the parallel search must not leak into the
     totals: whatever the interleaving, the counts equal the sequential
     left-to-right search's *)
  List.iter
    (fun domains ->
      Observe.reset ();
      let r =
        Parallel.Pool.find_first ~domains 32 (fun i ->
            Observe.bump c_work;
            if i = 7 then Some i else None)
      in
      check "hit found" true (r = Some 7);
      check_int
        (Printf.sprintf "tasks 0..7 counted (domains=%d)" domains)
        8
        (count "test.work" (Observe.snapshot ())))
    [ 1; 4 ];
  (* a miss executes every task, under either schedule *)
  List.iter
    (fun domains ->
      Observe.reset ();
      let r = Parallel.Pool.find_first ~domains 16 (fun i ->
          Observe.bump c_work; ignore i; None) in
      check "no hit" true (r = None);
      check_int "all tasks counted" 16 (count "test.work" (Observe.snapshot ())))
    [ 1; 4 ]

(* ---------- oracle / memo counters across domain counts ---------- *)

let team_instance () =
  let db =
    Database.of_relations
      [
        Relation.of_int_rows (Schema.make "R" [ "id"; "score" ])
          [ [ 1; 5 ]; [ 2; 3 ]; [ 3; 8 ]; [ 4; 1 ]; [ 5; 6 ]; [ 6; 2 ] ];
      ]
  in
  let compat =
    Qlang.Parser.parse_query
      "Qc() := exists a, s, b, s2. RQ(a, s) & RQ(b, s2) & s = s2 & a != b"
  in
  Core.Instance.make ~db ~select:(Qlang.Query.Identity "R")
    ~compat:(Core.Instance.Compat_query (Qlang.Query.Fo compat))
    ~cost:Core.Rating.card_or_infinite
    ~value:(Core.Rating.sum_col ~nonneg:true 1) ~budget:3. ()

let work_counters snap =
  (* the deterministic work counters; pool.* describes the execution
     shape and legitimately varies with the domain count, and timers
     carry wall-clock seconds *)
  List.filter
    (fun (name, v) ->
      (match v with Observe.Count _ -> true | Observe.Span _ -> false)
      && not (String.length name >= 5 && String.sub name 0 5 = "pool."))
    snap

let test_all_valid_counters_domain_independent () =
  let run domains =
    Observe.reset ();
    let inst = team_instance () in
    let pkgs = Core.Exist_pack.all_valid (Core.Exist_pack.ctx ~domains inst) in
    (pkgs, work_counters (Observe.nonzero (Observe.snapshot ())))
  in
  let pkgs1, snap1 = run 1 in
  let pkgs4, snap4 = run 4 in
  check "same packages" true (List.equal Core.Package.equal pkgs1 pkgs4);
  check "oracle/memo counters identical across domain counts" true
    (snap1 = snap4);
  check "oracle.nodes nonzero" true (count "oracle.nodes" snap1 > 0);
  check "compat memo active" true
    (count "memo.compat_hit" snap1 + count "memo.compat_miss" snap1 > 0)

(* ---------- DPLL telemetry ---------- *)

(* PHP(3,2): three pigeons, two holes — a fixed UNSAT instance that forces
   decisions, propagations, conflicts and trail unwinds. *)
let php32 =
  Solvers.Cnf.make ~nvars:6
    [
      [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ];
      [ -1; -3 ]; [ -1; -5 ]; [ -3; -5 ];
      [ -2; -4 ]; [ -2; -6 ]; [ -4; -6 ];
    ]

let test_sat_counters () =
  let run () =
    Observe.reset ();
    let r = Solvers.Sat.solve php32 in
    (r, Observe.nonzero (Observe.snapshot ()))
  in
  let r1, s1 = run () in
  let r2, s2 = run () in
  check "unsat" true (r1 = None);
  check_int "one solve" 1 (count "sat.solves" s1);
  check "decisions counted" true (count "sat.decisions" s1 > 0);
  check "conflicts counted" true (count "sat.conflicts" s1 > 0);
  check "propagations counted" true (count "sat.propagations" s1 > 0);
  check "unwinds counted" true (count "sat.trail_unwinds" s1 > 0);
  (* the solver is deterministic, so its telemetry is too (timers aside) *)
  check "reproducible" true
    (work_counters s1 = work_counters s2 && r1 = r2)

(* ---------- PKG_DOMAINS parsing (config edge case) ---------- *)

let test_parse_domains () =
  let recommended = Domain.recommended_domain_count () in
  check_int "unset uses recommended" recommended
    (Parallel.Pool.parse_domains None);
  check_int "plain integer" 4 (Parallel.Pool.parse_domains (Some "4"));
  check_int "whitespace tolerated" 6 (Parallel.Pool.parse_domains (Some " 6 "));
  check_int "zero clamps to 1" 1 (Parallel.Pool.parse_domains (Some "0"));
  check_int "negative clamps to 1" 1 (Parallel.Pool.parse_domains (Some "-3"));
  List.iter
    (fun bad ->
      let warned = ref None in
      let n =
        Parallel.Pool.parse_domains ~warn:(fun m -> warned := Some m) (Some bad)
      in
      check_int ("unparseable " ^ bad ^ " falls back") recommended n;
      match !warned with
      | None -> Alcotest.failf "no warning for %S" bad
      | Some m ->
          check "warning names the variable" true
            (String.length m >= 11 && String.sub m 0 11 = "PKG_DOMAINS"))
    [ "auto"; "4x"; ""; "many" ];
  (* a parseable value must not warn *)
  let warned = ref false in
  ignore (Parallel.Pool.parse_domains ~warn:(fun _ -> warned := true) (Some "2"));
  check "no warning on valid input" false !warned

let () =
  Alcotest.run "observe"
    [
      ( "core",
        [
          Alcotest.test_case "counter basics" `Quick (traced test_counter_basics);
          Alcotest.test_case "idempotent registration" `Quick
            (traced test_registration_idempotent);
          Alcotest.test_case "disabled is a no-op" `Quick
            (traced test_disabled_is_noop);
          Alcotest.test_case "span nesting" `Quick (traced test_span_nesting);
          Alcotest.test_case "span records on raise" `Quick
            (traced test_span_records_on_raise);
          Alcotest.test_case "capture and absorb" `Quick
            (traced test_capture_absorb);
          Alcotest.test_case "diff and nonzero" `Quick (traced test_diff_nonzero);
          Alcotest.test_case "text and json rendering" `Quick
            (traced test_rendering);
        ] );
      ( "pool",
        [
          Alcotest.test_case "map totals domain-independent" `Quick
            (traced test_pool_map_deterministic);
          Alcotest.test_case "find_first totals domain-independent" `Quick
            (traced test_pool_find_first_deterministic);
        ] );
      ( "integration",
        [
          Alcotest.test_case "all_valid counters domain-independent" `Quick
            (traced test_all_valid_counters_domain_independent);
          Alcotest.test_case "DPLL event counts" `Quick (traced test_sat_counters);
        ] );
      ( "config",
        [ Alcotest.test_case "PKG_DOMAINS parsing" `Quick test_parse_domains ] );
    ]
