(* PaQL surface + PB solver tests: parser round-trips, the pseudo-Boolean
   branch-and-bound against brute force, and — the refactor's key
   differential — the PaQL route against the legacy package oracle on
   instances small enough for both. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Paql = Qlang.Paql
module Pb = Solvers.Pb
module Paql_compile = Core.Paql_compile
module Package = Core.Package
module Mbp = Core.Mbp
module Budget = Robust.Budget

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-6))

(* ---------- parser ---------- *)

let test_parse_basic () =
  let q =
    Paql.parse
      "SELECT PACKAGE(P) FROM R WHERE price <= 10 AND rating >= 3 SUCH THAT \
       SUM(price) <= 50 AND COUNT(*) <= 4 MAXIMIZE SUM(rating)"
  in
  check_str "package" "P" q.Paql.package;
  check_str "relation" "R" q.Paql.relation;
  check_int "where preds" 2 (List.length q.Paql.where);
  check_int "globals" 2 (List.length q.Paql.such_that);
  (match q.Paql.objective with
  | Paql.Maximize (Paql.Sum "rating") -> ()
  | _ -> Alcotest.fail "objective mismatch");
  match q.Paql.such_that with
  | [ g1; g2 ] ->
      check "sum global" true (g1.Paql.agg = Paql.Sum "price");
      check "count global" true (g2.Paql.agg = Paql.Count && g2.Paql.gcmp = Paql.Le)
  | _ -> Alcotest.fail "such_that shape"

let test_parse_case_and_min_max () =
  let q =
    Paql.parse
      "select package(q) from items such that min(weight) >= 2 and \
       max(weight) <= 9 minimize count(*)"
  in
  check_str "relation" "items" q.Paql.relation;
  (match q.Paql.objective with
  | Paql.Minimize Paql.Count -> ()
  | _ -> Alcotest.fail "objective mismatch");
  match q.Paql.such_that with
  | [ { Paql.agg = Paql.Min "weight"; gcmp = Paql.Ge; gvalue = 2. };
      { Paql.agg = Paql.Max "weight"; gcmp = Paql.Le; gvalue = 9. } ] ->
      ()
  | _ -> Alcotest.fail "such_that shape"

let test_parse_roundtrip () =
  let sources =
    [
      "SELECT PACKAGE(P) FROM R";
      "SELECT PACKAGE(P) FROM R WHERE a >= 1";
      "SELECT PACKAGE(P) FROM R SUCH THAT COUNT(*) = 3";
      "SELECT PACKAGE(P) FROM R WHERE a <= 5 AND b >= 0 SUCH THAT \
       SUM(a) <= 9.5 AND MIN(b) >= 1 MAXIMIZE SUM(b)";
      "SELECT PACKAGE(P) FROM R SUCH THAT MAX(a) <= 100 MINIMIZE SUM(a)";
    ]
  in
  List.iter
    (fun src ->
      let q = Paql.parse src in
      let q' = Paql.parse (Paql.to_string q) in
      check ("round-trip: " ^ src) true (q = q'))
    sources

let test_parse_errors () =
  let bad =
    [
      "SELECT TUPLE(P) FROM R";
      "SELECT PACKAGE(P)";
      "SELECT PACKAGE(P) FROM R WHERE a < 1";
      "SELECT PACKAGE(P) FROM R SUCH THAT SUM() <= 1";
      "SELECT PACKAGE(P) FROM R MAXIMIZE";
      "SELECT PACKAGE(P) FROM R trailing";
    ]
  in
  List.iter
    (fun src ->
      match Paql.parse src with
      | _ -> Alcotest.failf "accepted: %s" src
      | exception Paql.Error _ -> ())
    bad

(* ---------- PB solver vs brute force ---------- *)

let brute_pb (p : Pb.program) =
  let n = p.Pb.nvars in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> mask land (1 lsl j) <> 0) in
    if Pb.feasible p x then begin
      let v = Pb.objective_value p x in
      match !best with
      | Some (bv, _) when bv >= v -> ()
      | _ -> best := Some (v, x)
    end
  done;
  !best

let random_pb rng =
  let n = 2 + Random.State.int rng 9 in
  let nc = 1 + Random.State.int rng 4 in
  let coeffs () =
    Array.init n (fun _ -> float_of_int (Random.State.int rng 13 - 3))
  in
  let constr () =
    let cmp =
      match Random.State.int rng 4 with
      | 0 -> Pb.Ge
      | 1 -> Pb.Eq
      | _ -> Pb.Le
    in
    { Pb.coeffs = coeffs (); cmp; rhs = float_of_int (Random.State.int rng 25) }
  in
  {
    Pb.nvars = n;
    objective = Array.init n (fun _ -> float_of_int (Random.State.int rng 19 - 4));
    constraints = List.init nc (fun _ -> constr ());
  }

let prop_pb_matches_brute =
  QCheck.Test.make ~count:200 ~name:"PB: branch-and-bound = brute force"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = random_pb rng in
      match (Pb.solve p, brute_pb p) with
      | None, None -> true
      | Some (v, x), Some (bv, _) ->
          Float.abs (v -. bv) <= 1e-6 && Pb.feasible p x
          && Float.abs (Pb.objective_value p x -. v) <= 1e-6
      | Some _, None | None, Some _ -> false)

let prop_pb_budgeted_sound =
  QCheck.Test.make ~count:100 ~name:"PB: budgeted partial is feasible, ≤ optimum"
    (QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_range 5 400)))
    (fun (seed, fuel) ->
      let rng = Random.State.make [| seed |] in
      let p = random_pb rng in
      match Pb.solve_budgeted ~budget:(Budget.make ~fuel ()) p with
      | Budget.Exact r -> r = Pb.solve p
      | Budget.Partial { best_so_far = None; _ } -> true
      | Budget.Partial { best_so_far = Some (v, x); _ } -> (
          Pb.feasible p x
          && Float.abs (Pb.objective_value p x -. v) <= 1e-6
          &&
          match Pb.solve p with
          | Some (opt, _) -> v <= opt +. 1e-6
          | None -> false))

(* ---------- compilation semantics ---------- *)

let db_of rows =
  Database.of_relations
    [ Relation.of_int_rows (Schema.make "R" [ "id"; "cost"; "val" ]) rows ]

let compile_str db src = Result.get_ok (Paql_compile.parse_and_compile db src)

let test_compile_errors () =
  let db = db_of [ [ 1; 2; 3 ] ] in
  let expect_err src =
    match Paql_compile.parse_and_compile db src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "compiled: %s" src
  in
  expect_err "SELECT PACKAGE(P) FROM missing";
  expect_err "SELECT PACKAGE(P) FROM R WHERE nope <= 1";
  expect_err "SELECT PACKAGE(P) FROM R SUCH THAT SUM(nope) <= 1";
  expect_err "SELECT PACKAGE(P) FROM R MAXIMIZE MIN(cost)"

let test_where_filters_candidates () =
  let db = db_of [ [ 1; 5; 1 ]; [ 2; 20; 9 ]; [ 3; 7; 2 ] ] in
  let c = compile_str db "SELECT PACKAGE(P) FROM R WHERE cost <= 10" in
  check_int "two candidates survive" 2
    (Array.length c.Paql_compile.linear.cands)

let test_min_max_empty_conventions () =
  let db = db_of [ [ 1; 5; 1 ]; [ 2; 8; 2 ] ] in
  (* MIN(∅) = +∞: the empty package satisfies MIN ≥ c *)
  let c = compile_str db "SELECT PACKAGE(P) FROM R SUCH THAT MIN(cost) >= 6" in
  check "empty satisfies MIN >= 6" true (Paql_compile.satisfies c Package.empty);
  (* MAX(∅) = −∞: the empty package satisfies MAX ≤ c *)
  let c = compile_str db "SELECT PACKAGE(P) FROM R SUCH THAT MAX(cost) <= 6" in
  check "empty satisfies MAX <= 6" true (Paql_compile.satisfies c Package.empty);
  (* ... but not MIN ≤ c (some tuple must witness it) *)
  let c = compile_str db "SELECT PACKAGE(P) FROM R SUCH THAT MIN(cost) <= 6" in
  check "empty fails MIN <= 6" false (Paql_compile.satisfies c Package.empty);
  match Paql_compile.solve_exact c with
  | Some a -> check "witnessed MIN <= 6" true (Paql_compile.satisfies c a.Paql_compile.package)
  | None -> Alcotest.fail "solvable query returned None"

let test_solve_exact_knapsack () =
  let db = db_of [ [ 1; 4; 9 ]; [ 2; 5; 10 ]; [ 3; 6; 2 ]; [ 4; 3; 5 ] ] in
  let c =
    compile_str db
      "SELECT PACKAGE(P) FROM R SUCH THAT SUM(cost) <= 9 MAXIMIZE SUM(val)"
  in
  match Paql_compile.solve_exact c with
  | Some a ->
      (* best: tuples 1 and 2 — cost 9, value 19 *)
      checkf "optimum" 19.0 a.Paql_compile.objective;
      check "satisfies" true (Paql_compile.satisfies c a.Paql_compile.package)
  | None -> Alcotest.fail "expected an answer"

let test_solve_exact_minimize () =
  let db = db_of [ [ 1; 4; 9 ]; [ 2; 5; 10 ]; [ 3; 6; 2 ] ] in
  let c =
    compile_str db
      "SELECT PACKAGE(P) FROM R SUCH THAT SUM(val) >= 11 MINIMIZE SUM(cost)"
  in
  match Paql_compile.solve_exact c with
  | Some a ->
      (* value ≥ 11 forces at least two tuples; cheapest is {1,2}: cost 9 *)
      checkf "min cost" 9.0 a.Paql_compile.objective;
      check "satisfies" true (Paql_compile.satisfies c a.Paql_compile.package)
  | None -> Alcotest.fail "expected an answer"

(* ---------- differential: PaQL route vs legacy oracle (property b) ---------- *)

(* Reference semantics: enumerate every subset of the candidates and check
   the surface query directly — independent of both engines under test. *)
let brute_paql (c : Paql_compile.t) =
  let cands = c.Paql_compile.linear.cands in
  let n = Array.length cands in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> mask land (1 lsl j) <> 0) in
    let pkg = Paql_compile.package_of_selection c x in
    if Paql_compile.satisfies c pkg then begin
      let v =
        Array.to_list x
        |> List.mapi (fun j taken ->
               if taken then c.Paql_compile.linear.objective.(j) else 0.0)
        |> List.fold_left ( +. ) 0.0
      in
      match !best with
      | Some bv when bv >= v -> ()
      | _ -> best := Some v
    end
  done;
  !best

let random_query rng =
  let budget = 6 + Random.State.int rng 14 in
  let cap = 1 + Random.State.int rng 4 in
  let clauses =
    List.filteri
      (fun i _ -> i = 0 || Random.State.bool rng)
      [
        Printf.sprintf "SUM(cost) <= %d" budget;
        Printf.sprintf "COUNT(*) <= %d" cap;
        "MIN(val) >= 1";
        "MAX(cost) <= 9";
      ]
  in
  "SELECT PACKAGE(P) FROM R SUCH THAT "
  ^ String.concat " AND " clauses
  ^ " MAXIMIZE SUM(val)"

let random_small_db rng =
  let n = 3 + Random.State.int rng 8 in
  db_of
    (List.init n (fun i ->
         [ i; 1 + Random.State.int rng 9; Random.State.int rng 8 ]))

let prop_paql_matches_brute =
  QCheck.Test.make ~count:150 ~name:"PaQL: exact solve = subset brute force"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let c = compile_str (random_small_db rng) (random_query rng) in
      let engine =
        Option.map (fun a -> a.Paql_compile.objective) (Paql_compile.solve_exact c)
      in
      (* minimize-negation is not in play: queries above all maximize *)
      match (engine, brute_paql c) with
      | None, None -> true
      | Some v, Some bv -> Float.abs (v -. bv) <= 1e-6
      | Some _, None | None, Some _ -> false)

(* The refactor's agreement proof: on the same query, the PB route and the
   legacy branch-and-bound package oracle (via MBP over the desugared
   instance, whose value rating is the objective) report the same optimum. *)
let prop_paql_matches_legacy_oracle =
  QCheck.Test.make ~count:100
    ~name:"PaQL: PB route = legacy package oracle (MBP k=1)"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let c = compile_str (random_small_db rng) (random_query rng) in
      let pb = Paql_compile.solve_exact c in
      let oracle = Mbp.max_bound c.Paql_compile.inst ~k:1 in
      match (pb, oracle) with
      | None, None -> true
      | Some a, Some v -> Float.abs (a.Paql_compile.objective -. v) <= 1e-6
      | Some _, None | None, Some _ -> false)

let prop_paql_budgeted_sound =
  QCheck.Test.make ~count:80 ~name:"PaQL: budgeted partial satisfies the query"
    (QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_range 3 200)))
    (fun (seed, fuel) ->
      let rng = Random.State.make [| seed |] in
      let c = compile_str (random_small_db rng) (random_query rng) in
      match Paql_compile.solve_budgeted ~budget:(Budget.make ~fuel ()) c with
      | Budget.Exact _ -> true
      | Budget.Partial { best_so_far = None; _ } -> true
      | Budget.Partial { best_so_far = Some a; _ } ->
          Paql_compile.satisfies c a.Paql_compile.package)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "paql"
    [
      ( "parser",
        [
          Alcotest.test_case "basic query" `Quick test_parse_basic;
          Alcotest.test_case "case + min/max" `Quick test_parse_case_and_min_max;
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
        ] );
      ( "pb",
        qsuite [ prop_pb_matches_brute; prop_pb_budgeted_sound ] );
      ( "compile",
        [
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
          Alcotest.test_case "WHERE filters" `Quick test_where_filters_candidates;
          Alcotest.test_case "MIN/MAX on empty" `Quick test_min_max_empty_conventions;
          Alcotest.test_case "knapsack optimum" `Quick test_solve_exact_knapsack;
          Alcotest.test_case "minimize optimum" `Quick test_solve_exact_minimize;
        ] );
      ( "differential",
        qsuite
          [
            prop_paql_matches_brute;
            prop_paql_matches_legacy_oracle;
            prop_paql_budgeted_sound;
          ] );
    ]
