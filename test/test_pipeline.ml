(* Cross-cutting (metamorphic) properties of the whole stack, plus direct
   tests of the binding-set engine underlying the evaluators. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let gen_seed = QCheck.make QCheck.Gen.(int_bound 1_000_000)

(* ---------- monotonicity of positive languages ---------- *)

(* CQ/UCQ/Datalog are monotone: inserting a tuple never removes answers.
   (FO with negation is not — checked by a concrete counterexample.) *)
let prop_positive_monotone =
  QCheck.Test.make ~name:"positive queries are monotone under insertions"
    ~count:60 gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db =
        Workload.Random_db.database rng ~specs:[ ("R", 2); ("S", 2) ] ~rows:6
          ~domain:4
      in
      let query = Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4 in
      let before = Qlang.Fo_eval.eval_query db query in
      let extra =
        Tuple.of_ints [ Random.State.int rng 4; Random.State.int rng 4 ]
      in
      let db' = Database.insert_tuple "R" extra db in
      let after = Qlang.Fo_eval.eval_query db' query in
      Relation.subset before after)

let prop_datalog_monotone =
  QCheck.Test.make ~name:"Datalog is monotone under insertions" ~count:40
    gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = Workload.Random_db.graph rng ~nodes:5 ~edges:7 in
      let tc =
        Qlang.Parser.parse_program
          "T(x,y) :- E(x,y). T(x,z) :- E(x,y), T(y,z). ?- T."
      in
      let before = Qlang.Datalog.eval db tc in
      let extra = Tuple.of_ints [ Random.State.int rng 5; Random.State.int rng 5 ] in
      let after = Qlang.Datalog.eval (Database.insert_tuple "E" extra db) tc in
      Relation.subset before after)

let test_fo_not_monotone () =
  (* Q(x) := U(x) & not E(x, x): inserting E(1,1) removes answer 1. *)
  let u = Relation.of_int_rows (Schema.make "U" [ "a" ]) [ [ 1 ] ] in
  let e = Relation.empty (Schema.make "E" [ "a"; "b" ]) in
  let db = Database.of_relations [ u; e ] in
  let query = Qlang.Parser.parse_query "Q(x) := U(x) & not E(x, x)" in
  let before = Qlang.Fo_eval.eval_query db query in
  let after =
    Qlang.Fo_eval.eval_query (Database.insert_tuple "E" (Tuple.of_ints [ 1; 1 ]) db) query
  in
  check_int "before" 1 (Relation.cardinal before);
  check_int "after" 0 (Relation.cardinal after)

(* ---------- problem interplay ---------- *)

let random_instance seed =
  let rng = Random.State.make [| seed |] in
  let rel =
    Relation.of_list (Schema.make "R" [ "id"; "w" ])
      (List.init
         (3 + Random.State.int rng 4)
         (fun i -> Tuple.of_ints [ i; Random.State.int rng 6 ]))
  in
  Instance.make
    ~db:(Database.of_relations [ rel ])
    ~select:(Qlang.Query.Identity "R") ~cost:Rating.card_or_infinite
    ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget:(float_of_int (1 + Random.State.int rng 2))
    ()

let prop_count_vs_bound =
  QCheck.Test.make ~name:"CPP count >= k iff MBP is_bound" ~count:60 gen_seed
    (fun seed ->
      let inst = random_instance seed in
      let k = 1 + (seed mod 3) in
      let bound = float_of_int (seed mod 8) in
      Mbp.is_bound inst ~k ~bound = (Cpp.count inst ~bound >= k))

let prop_budget_monotone =
  QCheck.Test.make ~name:"raising the budget never loses valid packages"
    ~count:60 gen_seed (fun seed ->
      let inst = random_instance seed in
      let inst' = { inst with Instance.budget = inst.Instance.budget +. 1. } in
      Cpp.count inst' ~bound:0. >= Cpp.count inst ~bound:0.)

let prop_bound_antitone =
  QCheck.Test.make ~name:"raising the rating bound never gains packages"
    ~count:60 gen_seed (fun seed ->
      let inst = random_instance seed in
      let b = float_of_int (seed mod 8) in
      Cpp.count inst ~bound:(b +. 1.) <= Cpp.count inst ~bound:b)

let prop_relax_gap_monotone =
  QCheck.Test.make ~name:"QRPP: feasible at gap g stays feasible at g' >= g"
    ~count:25 gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let phi = Solvers.Gen.ea_dnf rng ~m:2 ~n:2 ~nterms:3 in
      let inst, sites, b, g = Reductions.Sigma2.qrpp_instance phi in
      match Relax.qrpp inst ~sites ~k:1 ~bound:b ~max_gap:g with
      | None -> true
      | Some _ ->
          Option.is_some (Relax.qrpp inst ~sites ~k:1 ~bound:b ~max_gap:(g +. 1.)))

let prop_adjust_changes_monotone =
  QCheck.Test.make ~name:"ARPP: feasible with k' changes stays feasible with more"
    ~count:20 gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let phi = Solvers.Gen.ea_dnf rng ~m:2 ~n:2 ~nterms:3 in
      let inst, extra, b, k' = Reductions.Sigma2.arpp_instance phi in
      match Adjust.arpp inst ~extra ~k:1 ~bound:b ~max_changes:k' with
      | None -> true
      | Some delta ->
          Adjust.size delta <= k'
          && Option.is_some
               (Adjust.arpp inst ~extra ~k:1 ~bound:b ~max_changes:(k' + 1)))

let prop_frp_k_prefix =
  QCheck.Test.make ~name:"FRP: top-(k-1) is a prefix of top-k" ~count:50 gen_seed
    (fun seed ->
      let inst = random_instance seed in
      match Frp.enumerate inst ~k:3, Frp.enumerate inst ~k:2 with
      | Some l3, Some l2 ->
          List.for_all2 Package.equal l2 (List.filteri (fun i _ -> i < 2) l3)
      | None, _ -> true
      | Some _, None -> false)

(* ---------- the binding engine ---------- *)

module B = Qlang.Bindings

let b_of vars rows = B.make vars (List.map Tuple.of_ints rows)

let test_bindings_make_reorders () =
  (* columns follow sorted variable order regardless of input order *)
  let b = b_of [ "y"; "x" ] [ [ 10; 1 ]; [ 20; 2 ] ] in
  check "vars sorted" true (B.vars b = [| "x"; "y" |]);
  let b' = b_of [ "x"; "y" ] [ [ 1; 10 ]; [ 2; 20 ] ] in
  check "same set" true (B.equal b b')

let test_bindings_join () =
  let a = b_of [ "x"; "y" ] [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = b_of [ "y"; "z" ] [ [ 2; 5 ]; [ 9; 9 ] ] in
  let j = B.join a b in
  check "joined vars" true (B.vars j = [| "x"; "y"; "z" |]);
  check_int "joined rows" 1 (B.cardinal j);
  (* join with disjoint vars = product *)
  let c = b_of [ "w" ] [ [ 7 ]; [ 8 ] ] in
  check_int "product" 4 (B.cardinal (B.join a c));
  (* join with tt/ff *)
  check "tt neutral" true (B.equal (B.join a B.tt) a);
  check_int "ff annihilates" 0 (B.cardinal (B.join a B.ff))

let test_bindings_complement () =
  let adom = [ Value.Int 0; Value.Int 1; Value.Int 2 ] in
  let a = b_of [ "x" ] [ [ 0 ]; [ 2 ] ] in
  let c = B.complement ~adom:(lazy adom) a in
  check_int "complement" 1 (B.cardinal c);
  check "involutive" true (B.equal (B.complement ~adom:(lazy adom) (B.complement ~adom:(lazy adom) a)) a);
  check "nullary: not tt = ff" true (B.equal (B.complement ~adom:(lazy adom) B.tt) B.ff);
  check "nullary: not ff = tt" true (B.equal (B.complement ~adom:(lazy adom) B.ff) B.tt)

let test_bindings_project_extend () =
  let adom = [ Value.Int 0; Value.Int 1 ] in
  let a = b_of [ "x"; "y" ] [ [ 0; 1 ]; [ 1; 1 ] ] in
  let p = B.project [ "y" ] a in
  check "projected vars" true (B.vars p = [| "y" |]);
  check_int "projected rows dedup" 1 (B.cardinal p);
  let e = B.extend ~adom:(lazy adom) [ "z" ] a in
  check_int "extended rows" 4 (B.cardinal e);
  check "extend noop on present var" true (B.equal (B.extend ~adom:(lazy adom) [ "x" ] a) a)

let test_bindings_union_filter () =
  let adom = [ Value.Int 0; Value.Int 1 ] in
  let a = b_of [ "x" ] [ [ 0 ] ] in
  let b = b_of [ "y" ] [ [ 1 ] ] in
  let u = B.union ~adom:(lazy adom) a b in
  (* a extends to {0}×{0,1}, b to {0,1}×{1}: union = 3 pairs *)
  check_int "padded union" 3 (B.cardinal u);
  let f = B.filter (fun lookup -> Value.equal (lookup "x") (Value.Int 0)) u in
  check_int "filtered" 2 (B.cardinal f)

let test_bindings_assignments () =
  let a = b_of [ "x" ] [ [ 7 ] ] in
  check "assignments" true (B.assignments a = [ [ ("x", Value.Int 7) ] ])

let () =
  Alcotest.run "pipeline"
    [
      ( "monotonicity",
        [
          QCheck_alcotest.to_alcotest prop_positive_monotone;
          QCheck_alcotest.to_alcotest prop_datalog_monotone;
          Alcotest.test_case "FO is not monotone" `Quick test_fo_not_monotone;
        ] );
      ( "problem-interplay",
        [
          QCheck_alcotest.to_alcotest prop_count_vs_bound;
          QCheck_alcotest.to_alcotest prop_budget_monotone;
          QCheck_alcotest.to_alcotest prop_bound_antitone;
          QCheck_alcotest.to_alcotest prop_relax_gap_monotone;
          QCheck_alcotest.to_alcotest prop_adjust_changes_monotone;
          QCheck_alcotest.to_alcotest prop_frp_k_prefix;
        ] );
      ( "bindings",
        [
          Alcotest.test_case "canonical column order" `Quick test_bindings_make_reorders;
          Alcotest.test_case "join" `Quick test_bindings_join;
          Alcotest.test_case "complement" `Quick test_bindings_complement;
          Alcotest.test_case "project and extend" `Quick test_bindings_project_extend;
          Alcotest.test_case "union and filter" `Quick test_bindings_union_filter;
          Alcotest.test_case "assignments view" `Quick test_bindings_assignments;
        ] );
    ]
