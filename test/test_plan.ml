(* Differential tests for the physical-plan engine: every language routes
   through [Plan] by default, and on random databases and queries the plan
   interpreter must agree exactly with the legacy evaluators ([Cq_eval],
   [Fo_eval], [Datalog]), which are kept as oracles.  Also covers the plan
   cache, delta re-evaluation, shape certification and [explain]. *)

open Qlang
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let counter_value name =
  match List.assoc_opt name (Observe.snapshot ()) with
  | Some (Observe.Count n) -> n
  | _ -> 0

let with_tracing f =
  let was = Observe.enabled () in
  Observe.set_enabled true;
  Observe.reset ();
  Fun.protect ~finally:(fun () -> Observe.set_enabled was) f

let policies = [ Plan.Textual; Plan.Greedy; Plan.Stats ]

let random_db rng =
  Workload.Random_db.database rng
    ~specs:[ ("R", 2); ("S", 2); ("T", 1) ]
    ~rows:8 ~domain:4

(* ---------- CQ: three plan policies vs both legacy evaluators ---------- *)

let prop_cq_policies_agree =
  QCheck.Test.make
    ~name:"random CQ: plan (Textual|Greedy|Stats) = Cq_eval = Fo_eval"
    ~count:120 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4 in
      let reference = Fo_eval.eval_query db q in
      Relation.equal reference (Cq_eval.eval db q)
      && List.for_all
           (fun policy ->
             Relation.equal reference
               (Plan.run db (Plan.compile_fo ~policy db q)))
           policies)

(* ---------- UCQ: random disjunctions ---------- *)

let random_ucq rng db ~disjuncts =
  let q0 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
  let bodies =
    List.init disjuncts (fun _ ->
        (* Same head variables, fresh bodies: quantify away the leftovers so
           every disjunct exposes exactly the head. *)
        let q = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
        let extra =
          List.filter (fun v -> not (List.mem v q0.Ast.head))
            (Ast.free_vars q.Ast.body)
        in
        Ast.exists extra q.Ast.body)
  in
  { q0 with Ast.body = Ast.disj (Ast.exists [] q0.Ast.body :: bodies) }

let prop_ucq_agrees =
  QCheck.Test.make ~name:"random UCQ: plan = Cq_eval = Fo_eval" ~count:100
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = random_ucq rng db ~disjuncts:2 in
      let reference = Fo_eval.eval_query db q in
      Relation.equal reference (Cq_eval.eval db q)
      && List.for_all
           (fun policy ->
             Relation.equal reference
               (Plan.run db (Plan.compile_fo ~policy db q)))
           policies)

(* ---------- FO: negation, comparisons, universal quantifiers ---------- *)

let random_fo rng db =
  let q1 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
  let q2 = Workload.Random_db.random_cq rng db ~natoms:1 ~nvars:3 in
  let close head f =
    let extra = List.filter (fun v -> not (List.mem v head)) (Ast.free_vars f) in
    Ast.exists extra f
  in
  let body =
    match Random.State.int rng 3 with
    | 0 ->
        (* difference: q1 ∧ ¬q2 *)
        Ast.And (q1.Ast.body, Ast.Not (close q1.Ast.head q2.Ast.body))
    | 1 ->
        (* guarded universal: q1 ∧ ∀u.(¬q2[u] ∨ u ≥ 0) *)
        Ast.And
          ( q1.Ast.body,
            Ast.Forall
              ( [ "u" ],
                Ast.Or
                  ( Ast.Not (close [ "u" ] (Ast.subst
                       (List.map (fun v -> (v, Ast.Var "u"))
                          (Ast.free_vars q2.Ast.body))
                       q2.Ast.body)),
                    Ast.Cmp (Ast.Ge, Ast.Var "u", Ast.Const (Value.Int 0)) ) ) )
    | _ -> (
        (* comparison filter with a negated comparison *)
        match q1.Ast.head with
        | v :: _ ->
            Ast.And
              ( q1.Ast.body,
                Ast.Not (Ast.Cmp (Ast.Eq, Ast.Var v, Ast.Const (Value.Int 1)))
              )
        | [] -> Ast.And (q1.Ast.body, Ast.Not (close [] q2.Ast.body)))
  in
  { q1 with Ast.body = body }

let prop_fo_agrees =
  QCheck.Test.make ~name:"random FO (¬, ∀, cmp): plan = Fo_eval" ~count:100
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = random_fo rng db in
      let reference = Fo_eval.eval_query db q in
      Relation.equal reference (Plan.run db (Plan.compile_fo db q)))

(* ---------- Datalog: recursion and stratified negation ---------- *)

let atom rel args = { Ast.rel; args = List.map (fun v -> Ast.Var v) args }

let tc_program =
  {
    Datalog.rules =
      [
        Datalog.rule (atom "reach" [ "x"; "y" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule
          (atom "reach" [ "x"; "z" ])
          [ Datalog.Rel (atom "reach" [ "x"; "y" ]); Datalog.Rel (atom "E" [ "y"; "z" ]) ];
      ];
    answer = "reach";
  }

let unreachable_program =
  {
    Datalog.rules =
      [
        Datalog.rule (atom "node" [ "x" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule (atom "node" [ "y" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule (atom "reach" [ "x"; "y" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule
          (atom "reach" [ "x"; "z" ])
          [ Datalog.Rel (atom "reach" [ "x"; "y" ]); Datalog.Rel (atom "E" [ "y"; "z" ]) ];
        Datalog.rule
          (atom "unreach" [ "x"; "y" ])
          [
            Datalog.Rel (atom "node" [ "x" ]);
            Datalog.Rel (atom "node" [ "y" ]);
            Datalog.Neg (atom "reach" [ "x"; "y" ]);
          ];
      ];
    answer = "unreach";
  }

let prop_datalog_agrees =
  QCheck.Test.make
    ~name:"random graph: plan fixpoint = Datalog.eval (TC + stratified ¬)"
    ~count:80 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = Workload.Random_db.graph rng ~nodes:6 ~edges:10 in
      List.for_all
        (fun p ->
          Relation.equal (Datalog.eval db p)
            (Plan.run db (Plan.compile_datalog db p)))
        [ tc_program; unreachable_program ])

(* ---------- Query.eval routing = legacy across all six languages ---------- *)

let prop_query_eval_matches_legacy =
  QCheck.Test.make ~name:"Query.eval (plan route) = Query.eval_legacy"
    ~count:80 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let qs =
        [
          Query.Fo (Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4);
          Query.Fo (random_ucq rng db ~disjuncts:2);
          Query.Fo (random_fo rng db);
          Query.Identity "R";
          Query.Empty_query;
        ]
      in
      List.for_all
        (fun q -> Relation.equal (Query.eval db q) (Query.eval_legacy db q))
        qs
      &&
      let g = Workload.Random_db.graph rng ~nodes:5 ~edges:8 in
      List.for_all
        (fun p ->
          Relation.equal
            (Query.eval g (Query.Dl p))
            (Query.eval_legacy g (Query.Dl p)))
        [ tc_program; unreachable_program ])

(* ---------- delta re-evaluation vs full recompute ---------- *)

let prop_delta_matches_full =
  QCheck.Test.make
    ~name:"delta eval over D ⊕ RQ = full recompute (FO and Datalog)"
    ~count:80 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let rq_schema = Schema.make "RQ" [ "a"; "b" ] in
      let qc =
        let q = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
        (* Mention RQ in half the queries so both the patched and the
           fully-frozen paths are exercised. *)
        if Random.State.bool rng then
          { q with
            Ast.body = Ast.And (q.Ast.body, Ast.Atom (atom "RQ" [ "p"; "q" ]));
          }
        else q
      in
      let d =
        Engine.delta_prepare db ~rel:"RQ" ~schema:rq_schema (Query.Fo qc)
      in
      List.for_all
        (fun _ ->
          let rq =
            Workload.Random_db.relation rng rq_schema ~rows:3 ~domain:4
          in
          let full = Query.eval (Database.add rq db) (Query.Fo qc) in
          Relation.equal full (Engine.delta_eval d rq)
          && Engine.delta_is_empty d rq = Relation.is_empty full)
        [ (); (); () ])

let prop_delta_datalog_matches_full =
  QCheck.Test.make ~name:"delta eval = full recompute (Datalog over E ⊕ RQ)"
    ~count:40 seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = Workload.Random_db.graph rng ~nodes:5 ~edges:8 in
      let rq_schema = Schema.make "RQ" [ "a"; "b" ] in
      let p =
        {
          Datalog.rules =
            [
              Datalog.rule (atom "reach" [ "x"; "y" ])
                [ Datalog.Rel (atom "RQ" [ "x"; "y" ]) ];
              Datalog.rule
                (atom "reach" [ "x"; "z" ])
                [
                  Datalog.Rel (atom "reach" [ "x"; "y" ]);
                  Datalog.Rel (atom "E" [ "y"; "z" ]);
                ];
            ];
          answer = "reach";
        }
      in
      let d = Engine.delta_prepare db ~rel:"RQ" ~schema:rq_schema (Query.Dl p) in
      let rq = Workload.Random_db.relation rng rq_schema ~rows:2 ~domain:5 in
      let full = Query.eval (Database.add rq db) (Query.Dl p) in
      Relation.equal full (Engine.delta_eval d rq)
      && Engine.delta_is_empty d rq = Relation.is_empty full)

(* ---------- shape certification ---------- *)

let sp_query =
  Parser.parse_query "Q(f, price) := exists d. flight(f, \"edi\", d, price) & price < 400"

let flight_db =
  Database.of_string
    "flight(f, orig, dest, price)\n\
     1, \"edi\", \"nyc\", 300\n\
     2, \"edi\", \"cdg\", 120\n\
     3, \"cdg\", \"nyc\", 250\n"

let test_sp_single_scan () =
  let plan = Plan.compile_fo flight_db sp_query in
  let s = Plan.shape plan in
  (* the access path may be legacy or columnar, but it must be single *)
  check_int "one scan" 1
    (s.Plan.scans + s.Plan.column_scans + s.Plan.bitmap_filters
   + s.Plan.index_only_scans);
  check_int "no probes" 0 (s.Plan.probes + s.Plan.adaptive_joins);
  check_int "no hash joins" 0 s.Plan.hash_joins;
  check_int "no unions" 0 s.Plan.unions;
  check_int "no complements" 0 s.Plan.complements;
  check "advisor certifies" true
    (Analysis.Advisor.certificate_ok
       (Analysis.Advisor.certify_plan (Query.Fo sp_query) plan))

let test_certificates () =
  let cq = Parser.parse_query "Q(x, z) := exists y. R(x, y) & S(y, z)" in
  let rng = Random.State.make [| 7 |] in
  let db = random_db rng in
  let plan = Plan.compile_fo db cq in
  check "CQ certified complement-free" true
    (Analysis.Advisor.certificate_ok
       (Analysis.Advisor.certify_plan (Query.Fo cq) plan));
  let g = Workload.Random_db.graph rng ~nodes:4 ~edges:6 in
  check "Datalog certified as fixpoint" true
    (Analysis.Advisor.certificate_ok
       (Analysis.Advisor.certify_plan (Query.Dl tc_program)
          (Plan.compile_datalog g tc_program)));
  check "identity certified" true
    (Analysis.Advisor.certificate_ok
       (Analysis.Advisor.certify_plan (Query.Identity "E") (Plan.identity "E")))

(* ---------- plan cache ---------- *)

let test_plan_cache_hit () =
  with_tracing @@ fun () ->
  let rng = Random.State.make [| 11 |] in
  let db = random_db rng in
  let q = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
  let p1 = Plan.compile_fo_cached db q in
  let misses = counter_value "plan.cache_miss" in
  check "first compile misses" true (misses >= 1);
  let hits0 = counter_value "plan.cache_hit" in
  let p2 = Plan.compile_fo_cached db q in
  check "second compile hits the cache" true
    (counter_value "plan.cache_hit" = hits0 + 1);
  check "cached plan is the same value" true (p1 == p2);
  (* The cache keys on the revisions of the relations the query mentions:
     churn elsewhere in the database keeps the entry live... *)
  let db' = Database.add (Relation.empty (Schema.make "Z" [ "a" ])) db in
  let hits1 = counter_value "plan.cache_hit" in
  let p3 = Plan.compile_fo_cached db' q in
  check "unrelated relation change still hits" true
    (counter_value "plan.cache_hit" = hits1 + 1);
  check "unrelated change reuses the plan value" true (p1 == p3);
  (* ... while mutating a mentioned relation changes its revision and
     forces a recompile against fresh statistics. *)
  let rel = List.hd (Plan.rels p1) in
  let r0 = Database.find db rel in
  let fresh_tup =
    Tuple.of_list (List.init (Relation.arity r0) (fun i -> Value.Int (9000 + i)))
  in
  let db2 = Database.add (Relation.add fresh_tup r0) db in
  ignore (Plan.compile_fo_cached db2 q);
  check "mutated mentioned relation misses" true
    (counter_value "plan.cache_miss" > misses);
  (* Removing the same tuple restores the relation's revision, so the
     original entry hits again: a net no-op round trip is free. *)
  let db3 = Database.add (Relation.remove fresh_tup (Database.find db2 rel)) db2 in
  let hits2 = counter_value "plan.cache_hit" in
  ignore (Plan.compile_fo_cached db3 q);
  check "net no-op round trip hits again" true
    (counter_value "plan.cache_hit" = hits2 + 1)

let test_query_eval_uses_cache () =
  with_tracing @@ fun () ->
  let rng = Random.State.make [| 13 |] in
  let db = random_db rng in
  let q = Query.Fo (Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3) in
  let r1 = Query.eval db q in
  let compiles = counter_value "plan.compiles" in
  let r2 = Query.eval db q in
  check "no recompilation on the second eval" true
    (counter_value "plan.compiles" = compiles);
  check "same answers" true (Relation.equal r1 r2)

(* ---------- explain ---------- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_explain_output () =
  let text = Engine.explain flight_db (Query.Fo sp_query) in
  check "explain shows estimates" true (contains ~sub:"est" text);
  check "explain shows actual row counts" true (contains ~sub:"actual" text);
  (* the "edi" constant sits on a low-cardinality column, so the SP scan
     compiles to a bitmap filter *)
  check "explain shows the bitmap filter" true
    (contains ~sub:"bitmap-filter flight" text);
  check "explain reports the result size" true (contains ~sub:"result:" text)

(* ---------- Exist_pack candidate list is materialized once ---------- *)

let test_candidates_materialized_once () =
  let inst =
    Workload.Travel.package_instance ~orig:"edi" ~dest:"nyc" ~day:3 ()
  in
  let c = Core.Exist_pack.ctx inst in
  let l1 = Core.Exist_pack.candidates c in
  let l2 = Core.Exist_pack.candidates c in
  check "same physical list across calls" true (l1 == l2)

(* ---------- memo.compat_capped counter ---------- *)

let test_compat_memo_cap () =
  with_tracing @@ fun () ->
  let db =
    Database.of_relations
      [ Relation.of_int_rows (Schema.make "R" [ "a" ]) [ [ 0 ] ] ]
  in
  let q = Parser.parse_query "Q(x) := R(x)" in
  let inst =
    Core.Instance.make ~db ~select:(Query.Fo q)
      ~compat:(Core.Instance.Compat_fn ("always", fun _ _ -> true))
      ~cost:Core.Rating.card_or_infinite ~value:Core.Rating.count ~budget:10. ()
  in
  (* Overfill the verdict memo: past the cap every fresh package recomputes
     and bumps the counter instead of being stored. *)
  let over = 5 in
  for i = 0 to Core.Instance.compat_memo_cap + over - 1 do
    let pkg = Core.Package.singleton (Tuple.of_ints [ i ]) in
    ignore (Core.Instance.memo_compat inst pkg (fun () -> true))
  done;
  check_int "overflow recomputes are counted" over
    (counter_value "memo.compat_capped");
  (* Capped entries still answer correctly. *)
  let pkg = Core.Package.singleton (Tuple.of_ints [ Core.Instance.compat_memo_cap ]) in
  check "verdict still served" true
    (Core.Instance.memo_compat inst pkg (fun () -> true))

(* ---------- delta in the compatibility oracle ---------- *)

let test_validity_uses_delta () =
  with_tracing @@ fun () ->
  let inst =
    Workload.Travel.package_instance ~orig:"edi" ~dest:"nyc" ~day:3 ()
  in
  let cands = Relation.to_list (Core.Instance.candidates inst) in
  check "travel instance has candidates" true (cands <> []);
  let pkg = Core.Package.singleton (List.hd cands) in
  ignore (Core.Validity.compatible inst pkg);
  check "compat check went through delta evaluation" true
    (counter_value "plan.delta_evals" >= 1)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "plan"
    [
      ( "differential",
        qsuite
          [
            prop_cq_policies_agree;
            prop_ucq_agrees;
            prop_fo_agrees;
            prop_datalog_agrees;
            prop_query_eval_matches_legacy;
          ] );
      ( "delta",
        qsuite [ prop_delta_matches_full; prop_delta_datalog_matches_full ]
        @ [ Alcotest.test_case "oracle uses delta" `Quick test_validity_uses_delta ] );
      ( "shape",
        [
          Alcotest.test_case "SP compiles to a single scan" `Quick
            test_sp_single_scan;
          Alcotest.test_case "advisor certificates" `Quick test_certificates;
        ] );
      ( "cache",
        [
          Alcotest.test_case "compile cache hits" `Quick test_plan_cache_hit;
          Alcotest.test_case "Query.eval reuses plans" `Quick
            test_query_eval_uses_cache;
        ] );
      ( "explain",
        [ Alcotest.test_case "est vs actual" `Quick test_explain_output ] );
      ( "core",
        [
          Alcotest.test_case "Exist_pack candidates materialized once" `Quick
            test_candidates_materialized_once;
          Alcotest.test_case "memo.compat_capped" `Quick test_compat_memo_cap;
        ] );
    ]
