(* Tests for the static plan verifier: schema/arity typing, the
   rewrite-soundness certificate, the budget/fault coverage lints and the
   effect analysis ([Analysis.Plan_check] / [Analysis.Effects]), plus the
   raw-plan fixture parser and the plan-cache key properties the verifier
   relies on. *)

open Qlang
module Value = Relational.Value
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Check = Analysis.Plan_check
module Effects = Analysis.Effects
module Diagnostic = Analysis.Diagnostic

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)
let policies = [ Plan.Textual; Plan.Greedy; Plan.Stats ]

let random_db rng =
  Workload.Random_db.database rng
    ~specs:[ ("R", 2); ("S", 2); ("T", 1) ]
    ~rows:8 ~domain:4

let codes ds = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds
let has_code c ds = List.mem c (codes ds)

let errors_of ds = List.filter Diagnostic.is_error ds

let atom rel args = { Ast.rel; args = List.map (fun v -> Ast.Var v) args }

let tc_program =
  {
    Datalog.rules =
      [
        Datalog.rule (atom "reach" [ "x"; "y" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule
          (atom "reach" [ "x"; "z" ])
          [ Datalog.Rel (atom "reach" [ "x"; "y" ]); Datalog.Rel (atom "E" [ "y"; "z" ]) ];
      ];
    answer = "reach";
  }

let unreachable_program =
  {
    Datalog.rules =
      [
        Datalog.rule (atom "node" [ "x" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule (atom "node" [ "y" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule (atom "reach" [ "x"; "y" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ];
        Datalog.rule
          (atom "reach" [ "x"; "z" ])
          [ Datalog.Rel (atom "reach" [ "x"; "y" ]); Datalog.Rel (atom "E" [ "y"; "z" ]) ];
        Datalog.rule
          (atom "unreach" [ "x"; "y" ])
          [
            Datalog.Rel (atom "node" [ "x" ]);
            Datalog.Rel (atom "node" [ "y" ]);
            Datalog.Neg (atom "reach" [ "x"; "y" ]);
          ];
      ];
    answer = "unreach";
  }

let nonrec_program =
  {
    Datalog.rules =
      [ Datalog.rule (atom "node" [ "x" ]) [ Datalog.Rel (atom "E" [ "x"; "y" ]) ] ];
    answer = "node";
  }

(* ---------- pass 1+2: every language × every policy is clean ---------- *)

(* One representative query per language band of the paper (Table 2):
   SP, CQ, UCQ, ∃FO⁺, FO, DATALOG.  Under every policy, the compiled plan
   must typecheck without errors and carry a full certificate — the
   acceptance gate of the verifier. *)
let test_languages_clean () =
  let rng = Random.State.make [| 11 |] in
  let db = random_db rng in
  let fo_queries =
    [
      ("SP", "Q(x) := exists y. R(x, y)");
      ("CQ", "Q(x, z) := exists y. R(x, y) & S(y, z)");
      ("UCQ", "Q(x) := (exists y. R(x, y)) | (exists y. S(x, y))");
      ("EFO+", "Q(x) := exists y. R(x, y) & (S(y, x) | T(y))");
      ("FO", "Q(x) := T(x) & not (exists y. R(x, y))");
    ]
  in
  List.iter
    (fun (lang, text) ->
      let fq = Parser.parse_query text in
      let q = Query.Fo fq in
      List.iter
        (fun policy ->
          let plan = Plan.compile_fo ~policy db fq in
          let ds = Check.check ~db ~query:q plan in
          check
            (Printf.sprintf "%s/%s clean" lang (Plan.policy_to_string policy))
            true
            (Check.ok ds);
          check
            (Printf.sprintf "%s/%s certified" lang (Plan.policy_to_string policy))
            true
            (Analysis.Advisor.certificate_ok (Check.certify q plan)))
        policies)
    fo_queries;
  let g = Workload.Random_db.graph rng ~nodes:6 ~edges:12 in
  List.iter
    (fun p ->
      let plan = Plan.compile_datalog g p in
      let q = Query.Dl p in
      check "DATALOG clean" true (Check.ok (Check.check ~db:g ~query:q plan));
      check "DATALOG certified" true
        (Analysis.Advisor.certificate_ok (Check.certify q plan)))
    [ tc_program; unreachable_program; nonrec_program ]

(* ---------- the QCheck acceptance property ---------- *)

(* Typing soundness: a plan with no P-series typing errors evaluates
   without interpreter failures (unknown relation, arity, unbound column)
   on the database it was typed against.  ≥ 1000 random (query, db) pairs
   across UCQ and full FO. *)

let random_ucq rng db ~disjuncts =
  let q0 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
  let bodies =
    List.init disjuncts (fun _ ->
        let q = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
        let extra =
          List.filter (fun v -> not (List.mem v q0.Ast.head))
            (Ast.free_vars q.Ast.body)
        in
        Ast.exists extra q.Ast.body)
  in
  { q0 with Ast.body = Ast.disj (Ast.exists [] q0.Ast.body :: bodies) }

let random_fo rng db =
  let q1 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
  let q2 = Workload.Random_db.random_cq rng db ~natoms:1 ~nvars:3 in
  let close head f =
    let extra = List.filter (fun v -> not (List.mem v head)) (Ast.free_vars f) in
    Ast.exists extra f
  in
  { q1 with Ast.body = Ast.And (q1.Ast.body, Ast.Not (close q1.Ast.head q2.Ast.body)) }

let typed_runs_clean ~name ~mk_query =
  QCheck.Test.make ~count:550 ~name seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = mk_query rng db in
      let policy = List.nth policies (Random.State.int rng 3) in
      let plan = Plan.compile_fo ~policy db q in
      if Check.ok (Check.typecheck ~db plan) then (
        ignore (Plan.run db plan);
        true)
      else
        (* the compiler never produces an ill-typed plan for its own db *)
        false)

let prop_typed_ucq_runs =
  typed_runs_clean ~name:"typing ⇒ no interpreter arity errors (random UCQ)"
    ~mk_query:(fun rng db -> random_ucq rng db ~disjuncts:2)

let prop_typed_fo_runs =
  typed_runs_clean ~name:"typing ⇒ no interpreter arity errors (random FO)"
    ~mk_query:random_fo

let prop_typed_datalog_runs =
  QCheck.Test.make ~count:200
    ~name:"typing ⇒ fixpoint runs (random graph TC)" seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let g = Workload.Random_db.graph rng ~nodes:6 ~edges:10 in
      let plan = Plan.compile_datalog g tc_program in
      Check.ok (Check.typecheck ~db:g plan)
      &&
      (ignore (Plan.run g plan);
       true))

(* ---------- per-code negatives via the raw-plan notation ---------- *)

let fixture_db =
  Database.of_string
    "flight(id, src, dst, price)\n\
     1, \"edi\", \"nyc\", 300\n\
     \n\
     hub(city)\n\
     \"nyc\"\n"

let raw_check text =
  Check.check ~db:fixture_db (Analysis.Plan_parse.parse text)

let test_typing_negatives () =
  check "P001" true (has_code "P001" (raw_check "answer Q(x)\n  scan nosuch(x)"));
  check "P002" true (has_code "P002" (raw_check "answer Q(x, y)\n  scan flight(x, y)"));
  check "P003" true
    (has_code "P003"
       (raw_check "answer Q(i)\n  scan flight(i, s, d, p) vars [i]"));
  check "P004" true
    (has_code "P004" (raw_check "answer Q(x)\n  filter y < 3\n    scan hub(x)"));
  check "P005 warns" true
    (has_code "P005"
       (raw_check "answer Q(x)\n  project [x, z]\n    scan hub(x)"));
  check "P005 not an error" true
    (Check.ok
       (Check.check ~db:fixture_db
          (Analysis.Plan_parse.parse
             "answer Q(x)\n  project [x, z]\n    scan hub(x)")));
  check "P006" true
    (has_code "P006"
       (raw_check
          "fixpoint reach\n  stratum reach/2\n    rule reach(x, y, z)\n      scan hub(x)"));
  check "P007 info" true
    (has_code "P007"
       (raw_check "answer Q(x, y)\n  hash-join\n    scan hub(x)\n    scan hub(y)"));
  check "clean raw plan" true
    (Check.ok
       (Check.check ~db:fixture_db
          (Analysis.Plan_parse.parse "answer Q(city)\n  scan hub(city)")))

(* ---------- rewrite-soundness negatives (tampered plans) ---------- *)

let cq = Parser.parse_query "Q(x, z) := exists y. R(x, y) & S(y, z)"

let tamper_disjuncts fp f =
  Plan.Answer { fp with Plan.fp_disjuncts = f fp.Plan.fp_disjuncts }

let compiled_fo db q =
  match Plan.compile_fo db q with
  | Plan.Answer fp -> fp
  | _ -> Alcotest.fail "expected an Answer plan"

let test_certify_negatives () =
  let rng = Random.State.make [| 23 |] in
  let db = random_db rng in
  let fp = compiled_fo db cq in
  (* P010: swap the scanned relations for a different atom multiset *)
  let rename_scans n =
    let rec go n =
      let op =
        match n.Plan.op with
        | Plan.Scan a -> Plan.Scan { a with Ast.rel = "T" }
        | Plan.Column_scan a -> Plan.Column_scan { a with Ast.rel = "T" }
        | Plan.Bitmap_filter a -> Plan.Bitmap_filter { a with Ast.rel = "T" }
        | Plan.Index_only_scan (a, keep) ->
            Plan.Index_only_scan ({ a with Ast.rel = "T" }, keep)
        | Plan.Probe (c, a) -> Plan.Probe (go c, { a with Ast.rel = "T" })
        | Plan.Adaptive_join (c, a) ->
            Plan.Adaptive_join (go c, { a with Ast.rel = "T" })
        | op -> op
      in
      Plan.raw_node op n.Plan.nvars
    in
    go n
  in
  let p010 =
    tamper_disjuncts fp
      (List.map (fun d -> { d with Plan.d_node = rename_scans d.Plan.d_node }))
  in
  check "P010" true (has_code "P010" (Check.certify_diags (Query.Fo cq) p010));
  (* P011: a filtered source against a filter-free plan *)
  let cq_filtered =
    Parser.parse_query "Q(x, z) := exists y. R(x, y) & S(y, z) & x = 1"
  in
  let p011 =
    Plan.Answer
      { (compiled_fo db cq_filtered) with Plan.fp_disjuncts = fp.Plan.fp_disjuncts }
  in
  check "P011" true
    (has_code "P011" (Check.certify_diags (Query.Fo cq_filtered) p011));
  (* P012: projecting away a free variable of the source *)
  let drop_head d =
    { d with Plan.d_node = Plan.raw_node (Plan.Project ([ "z" ], d.Plan.d_node)) [ "z" ] }
  in
  let p012 = tamper_disjuncts fp (List.map drop_head) in
  check "P012" true (has_code "P012" (Check.certify_diags (Query.Fo cq) p012));
  (* P014: disjunct coverage, and plan kind vs query kind *)
  let p014 = tamper_disjuncts fp (fun _ -> []) in
  check "P014 coverage" true
    (has_code "P014" (Check.certify_diags (Query.Fo cq) p014));
  check "P014 kind mismatch" true
    (has_code "P014"
       (Check.certify_diags (Query.Dl tc_program) (Plan.Answer fp)));
  (* a tampered plan also loses its certificate *)
  check "tampered certificate" false
    (Analysis.Advisor.certificate_ok (Check.certify (Query.Fo cq) p010))

let test_certify_dl () =
  let rng = Random.State.make [| 29 |] in
  let g = Workload.Random_db.graph rng ~nodes:5 ~edges:9 in
  let cert p =
    Analysis.Advisor.certificate_to_string
      (Analysis.Advisor.certify_plan (Query.Dl p) (Plan.compile_datalog g p))
  in
  (* satellite: the advisor now certifies fixpoint plans in detail — no
     tractable Table-8.1 cell prints as uncertified *)
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check "recursive cert mentions semi-naive" true
    (contains (cert tc_program) "semi-naive");
  check "nonrecursive cert mentions DATALOGnr" true
    (contains (cert nonrec_program) "DATALOGnr");
  (* tampering the deltas away must void the certificate *)
  let dp =
    match Plan.compile_datalog g tc_program with
    | Plan.Fixpoint dp -> dp
    | _ -> Alcotest.fail "expected a Fixpoint plan"
  in
  let naive =
    Plan.Fixpoint
      {
        dp with
        Plan.dp_strata =
          List.map
            (fun stp ->
              {
                stp with
                Plan.st_rules =
                  List.map
                    (fun rp -> { rp with Plan.rp_deltas = [] })
                    stp.Plan.st_rules;
              })
            dp.Plan.dp_strata;
      }
  in
  check "naive recursion violates" false
    (Analysis.Advisor.certificate_ok
       (Analysis.Advisor.certify_plan (Query.Dl tc_program) naive));
  check "naive recursion fails P014" true
    (has_code "P014" (Check.certify_diags (Query.Dl tc_program) naive));
  (* P013: collapsing the stratification puts the complement over a
     same-stratum IDB *)
  let dp_neg =
    match Plan.compile_datalog g unreachable_program with
    | Plan.Fixpoint dp -> dp
    | _ -> Alcotest.fail "expected a Fixpoint plan"
  in
  let merged =
    Plan.Fixpoint
      {
        dp_neg with
        Plan.dp_strata =
          [
            {
              Plan.st_idbs =
                List.concat_map (fun s -> s.Plan.st_idbs) dp_neg.Plan.dp_strata;
              st_rules =
                List.concat_map (fun s -> s.Plan.st_rules) dp_neg.Plan.dp_strata;
            };
          ];
      }
  in
  check "P013" true
    (has_code "P013"
       (Check.certify_diags (Query.Dl unreachable_program) merged))

(* ---------- budget & fault coverage ---------- *)

let test_budget_fault () =
  let rng = Random.State.make [| 31 |] in
  let db = random_db rng in
  let g = Workload.Random_db.graph rng ~nodes:5 ~edges:9 in
  let cq_plan = Plan.compile_fo db cq in
  let dl_plan = Plan.compile_datalog g tc_program in
  check "cq budget lint clean" true (Check.ok (Check.budget_lint cq_plan));
  check "dl budget lint clean" true (Check.ok (Check.budget_lint dl_plan));
  check "full corpus covers all plan sites" true
    (Check.ok (Check.fault_coverage [ cq_plan; dl_plan ]));
  (* an FO-only corpus never reaches the fixpoint-round site *)
  let ds = Check.fault_coverage [ cq_plan ] in
  check "fo-only corpus misses plan.round" true (has_code "P022" ds);
  check "registry contains the plan sites" true
    (List.for_all
       (fun s -> List.mem s (Check.registry_sites ()))
       Plan.plan_fault_sites);
  check_int "fault registry size" 22 (List.length (Check.registry_sites ()));
  (* every operator declares a budget tick — the compile-time exhaustive
     match in [Plan.op_guards] is what forces new operators to choose *)
  check "probe declares the join fault site" true
    (List.mem (Plan.Fault_site "plan.join")
       (Plan.op_guards (Plan.Probe (Plan.raw_node Plan.Tt [], atom "R" [ "x"; "y" ]))))

(* ---------- effect analysis ---------- *)

let test_effects () =
  let rng = Random.State.make [| 37 |] in
  let db = random_db rng in
  let plan = Plan.compile_fo db cq in
  let s = Effects.summarize plan in
  check "compiled CQ is ConcurrencySafe" true (s.Effects.verdict = Effects.Concurrency_safe);
  check "touches relation caches" true
    (List.exists
       (fun (a : Effects.access) -> a.Effects.resource = Effects.Relation_caches)
       s.Effects.accesses);
  check "lattice order" true
    (Effects.level_leq Effects.Pure Effects.Reads_shared
    && Effects.level_leq Effects.Reads_shared Effects.Writes_shared
    && not (Effects.level_leq Effects.Writes_shared Effects.Pure));
  check "join" true
    (Effects.level_join Effects.Reads_shared Effects.Writes_shared
    = Effects.Writes_shared);
  (* modelling an unsynchronized structure flips the verdict *)
  let unsafe =
    [ { Effects.resource = Effects.Plan_cache; level = Effects.Writes_shared;
        synchronized = false } ]
  in
  (match Effects.verdict unsafe with
  | Effects.Requires_exclusive [ "plan-cache" ] -> ()
  | _ -> Alcotest.fail "expected RequiresExclusive(plan-cache)");
  check "P030 reported" true (has_code "P030" (Check.effects_diags plan));
  check "no P031 on safe plan" false
    (has_code "P031" (Check.effects_diags plan))

(* ---------- plan-cache key correctness (satellite) ---------- *)

(* Distinct semantics never collide on (policy × query × db identity), and
   cache hits return exactly the plan that already passed typing. *)
let prop_cache_key =
  QCheck.Test.make ~count:150 ~name:"plan-cache keys: no collisions, typed hits"
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q1 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
      let q2 = Workload.Random_db.random_cq rng db ~natoms:2 ~nvars:3 in
      let policy = List.nth policies (Random.State.int rng 3) in
      let p1 = Plan.compile_fo_cached ~policy db q1 in
      let hit = Plan.compile_fo_cached ~policy db q1 in
      (* same key → the same physical plan, still well-typed *)
      hit == p1
      && Check.ok (Check.typecheck ~db p1)
      && (match p1 with
         | Plan.Answer fp -> fp.Plan.fp_policy = policy
         | _ -> false)
      &&
      (* different query (when semantically written differently) → its own
         plan computing its own answers *)
      let p2 = Plan.compile_fo_cached ~policy db q2 in
      let sem_ok q p = Relation.equal (Fo_eval.eval_query db q) (Plan.run db p) in
      (Ast.equal_formula q1.Ast.body q2.Ast.body || not (p2 == p1))
      && sem_ok q1 p1 && sem_ok q2 p2)

let prop_cache_policy_distinct =
  QCheck.Test.make ~count:80 ~name:"plan-cache keys: policies do not collide"
    seed_gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = random_db rng in
      let q = Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4 in
      List.for_all
        (fun policy ->
          match Plan.compile_fo_cached ~policy db q with
          | Plan.Answer fp -> fp.Plan.fp_policy = policy
          | _ -> false)
        policies)

(* ---------- dispatch verification mode ---------- *)

let test_dispatch_verify () =
  let inst = Workload.Travel.package_instance ~orig:"edi" ~dest:"nyc" ~day:3 () in
  let ds = Core.Dispatch.verify_plans inst in
  check "workload instance verifies" true (Check.ok ds);
  check_int "no verify errors" 0 (List.length (errors_of ds))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "plan_check"
    [
      ( "typing",
        [
          Alcotest.test_case "all languages × policies clean" `Quick
            test_languages_clean;
          Alcotest.test_case "per-code negatives (raw plans)" `Quick
            test_typing_negatives;
        ]
        @ qsuite [ prop_typed_ucq_runs; prop_typed_fo_runs; prop_typed_datalog_runs ] );
      ( "certify",
        [
          Alcotest.test_case "tampered FO plans rejected" `Quick
            test_certify_negatives;
          Alcotest.test_case "Datalog certificates" `Quick test_certify_dl;
        ] );
      ( "budget-fault",
        [ Alcotest.test_case "lint and coverage" `Quick test_budget_fault ] );
      ("effects", [ Alcotest.test_case "lattice and verdicts" `Quick test_effects ]);
      ("cache", qsuite [ prop_cache_key; prop_cache_policy_distinct ]);
      ( "dispatch",
        [ Alcotest.test_case "verify_plans" `Quick test_dispatch_verify ] );
    ]
