(* Tests for the query languages: AST utilities, fragment classification,
   the FO evaluator, the CQ join planner, the Datalog engine, the parser and
   the pretty-printer. *)

open Qlang.Ast
module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let r = Relation.of_int_rows (Schema.make "R" [ "a"; "b" ]) [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]
let s = Relation.of_int_rows (Schema.make "S" [ "a"; "b" ]) [ [ 2; 10 ]; [ 3; 20 ] ]
let u = Relation.of_int_rows (Schema.make "U" [ "a" ]) [ [ 1 ]; [ 2 ] ]
let db = Database.of_relations [ r; s; u ]

let q str = Qlang.Parser.parse_query str
let f str = Qlang.Parser.parse_formula str

(* ---------- ast utilities ---------- *)

let test_free_vars () =
  Alcotest.(check (list string))
    "free vars" [ "x"; "z" ]
    (free_vars (f "exists y. R(x, y) & S(y, z)"));
  Alcotest.(check (list string))
    "forall binds" [ "x" ]
    (free_vars (f "forall y. R(x, y)"));
  Alcotest.(check (list string))
    "not keeps" [ "x" ] (free_vars (f "not U(x)"))

let test_conjuncts_disjuncts () =
  check_int "conjuncts" 3 (List.length (conjuncts (f "U(x) & U(y) & U(z)")));
  check_int "disjuncts" 3 (List.length (disjuncts (f "U(x) | U(y) | U(z)")));
  check "conj of empty" true (equal_formula (conj []) True);
  check "disj of empty" true (equal_formula (disj []) False)

let test_subst () =
  let g = subst [ ("x", Const (Value.Int 7)) ] (f "R(x, y) & exists x. U(x)") in
  check "substituted outside binder only" true
    (equal_formula g (f "R(7, y) & exists x. U(x)"))

let test_freshen () =
  let g = freshen (f "(exists y. R(x, y)) & (exists y. S(x, y))") in
  (* After freshening, flattening is sound: the two y's must differ. *)
  let rec binders acc = function
    | Exists (vs, body) -> binders (vs @ acc) body
    | And (a, b) -> binders (binders acc a) b
    | _ -> acc
  in
  let bs = binders [] g in
  check_int "two binders" 2 (List.length bs);
  check "distinct" true (List.length (List.sort_uniq compare bs) = 2)

let test_rename_rels () =
  check "rename" true
    (equal_formula
       (rename_rels [ ("R", "R2") ] (f "R(x, y) & S(x, y)"))
       (f "R2(x, y) & S(x, y)"))

let test_cmp_semantics () =
  check "eq" true (eval_cmp Eq (Value.Int 1) (Value.Int 1));
  check "neq" true (eval_cmp Neq (Value.Int 1) (Value.Int 2));
  check "lt strings" true (eval_cmp Lt (Value.Str "a") (Value.Str "b"));
  check "negate" true
    (List.for_all
       (fun op ->
         List.for_all
           (fun (a, b) ->
             eval_cmp op a b = not (eval_cmp (negate_cmp op) a b))
           [ (Value.Int 1, Value.Int 2); (Value.Int 2, Value.Int 2);
             (Value.Int 3, Value.Int 2) ])
       [ Eq; Neq; Lt; Le; Gt; Ge ])

(* ---------- fragment classification ---------- *)

let test_fragments () =
  let frag str = Qlang.Fragment.classify (f str) in
  Alcotest.(check string) "sp" "SP"
    (Qlang.Fragment.to_string (frag "exists y. R(x, y) & x < 3"));
  Alcotest.(check string) "cq" "CQ"
    (Qlang.Fragment.to_string (frag "R(x, y) & S(y, z)"));
  Alcotest.(check string) "ucq" "UCQ"
    (Qlang.Fragment.to_string (frag "R(x, y) | S(x, y)"));
  Alcotest.(check string) "ucq under exists" "UCQ"
    (Qlang.Fragment.to_string (frag "exists y. (R(x, y) | S(x, y))"));
  Alcotest.(check string) "efo+" "∃FO+"
    (Qlang.Fragment.to_string (frag "R(x, y) & (S(x, x) | U(x)) & U(y)"));
  Alcotest.(check string) "fo (not)" "FO"
    (Qlang.Fragment.to_string (frag "R(x, y) & not U(x)"));
  Alcotest.(check string) "fo (forall)" "FO"
    (Qlang.Fragment.to_string (frag "forall y. R(x, y)"));
  check "leq chain" true
    Qlang.Fragment.(leq Sp Cq && leq Cq Ucq && leq Ucq Efo_plus && leq Efo_plus Fo);
  check "not leq" false Qlang.Fragment.(leq Fo Cq)

let test_fragment_edges () =
  let frag str = Qlang.Fragment.to_string (Qlang.Fragment.classify (f str)) in
  (* ∃ distributes over ∨, so it stays UCQ rather than jumping to ∃FO⁺ *)
  Alcotest.(check string) "exists over or" "UCQ"
    (frag "exists x. (R(x, y) | exists z. S(y, z))");
  Alcotest.(check string) "or under and is ∃FO+" "∃FO+"
    (frag "U(y) & (R(x, y) | S(x, y))");
  Alcotest.(check string) "forall is FO" "FO" (frag "forall x. R(x, y)");
  (* double negation is not simplified away: still FO syntactically *)
  Alcotest.(check string) "not not" "FO" (frag "not (not U(x))");
  (* a single atom with several built-ins, including Dist, stays SP *)
  Alcotest.(check string) "sp with builtins" "SP"
    (frag "exists y. R(x, y) & x < 3 & y != 2 & dist[geo](x, y) <= 1.5");
  Alcotest.(check string) "dist alone is not sp" "CQ" (frag "dist[geo](x, y) <= 1.5");
  (* two relation atoms break the single-scan shape *)
  Alcotest.(check string) "two atoms" "CQ" (frag "exists y. R(x, y) & R(y, x)");
  (* False is a UCQ (the empty union) but not a CQ *)
  Alcotest.(check string) "false" "UCQ"
    (Qlang.Fragment.to_string (Qlang.Fragment.classify False))

(* Classification is monotone under ∧/∨ composition: combining two
   formulas never lands below either operand's fragment.  (This needs each
   operand to contain a relation atom — [True ∧ R(x,y)] is SP while [True]
   alone is a CQ.) *)
let gen_atomful_formula =
  let open QCheck.Gen in
  let base =
    oneofl
      [
        f "R(x, y)";
        f "S(y, z)";
        f "U(x)";
        f "exists y. R(x, y) & x < 3";
        f "R(x, y) & S(y, z)";
        f "R(x, y) | U(x)";
        f "not U(x)";
        f "forall z. S(y, z)";
      ]
  in
  let rec go n =
    if n <= 0 then base
    else
      frequency
        [
          (3, base);
          (2, map2 (fun a b -> And (a, b)) (go (n - 1)) (go (n - 1)));
          (2, map2 (fun a b -> Or (a, b)) (go (n - 1)) (go (n - 1)));
          (1, map (fun a -> Exists ([ "y" ], a)) (go (n - 1)));
          (1, map (fun a -> And (a, Cmp (Lt, Var "x", Const (Value.Int 3)))) (go (n - 1)));
        ]
  in
  go 3

let prop_classify_monotone =
  QCheck.Test.make ~name:"fragment classification monotone under ∧/∨" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_atomful_formula gen_atomful_formula))
    (fun (a, b) ->
      let open Qlang.Fragment in
      let ca = classify a and cb = classify b in
      let up = classify (And (a, b)) and down = classify (Or (a, b)) in
      leq ca up && leq cb up && leq ca down && leq cb down)

let test_query_language () =
  let lang qq = Qlang.Query.lang_to_string (Qlang.Query.language qq) in
  Alcotest.(check string) "identity" "SP" (lang (Qlang.Query.Identity "R"));
  Alcotest.(check string) "empty" "SP" (lang Qlang.Query.Empty_query);
  Alcotest.(check string) "cq" "CQ"
    (lang (Qlang.Query.Fo (q "Q(x) := R(x, y) & S(y, z)")));
  let tc = Qlang.Parser.parse_program "T(x,y) :- E(x,y). T(x,z) :- E(x,y), T(y,z)." in
  Alcotest.(check string) "datalog" "DATALOG" (lang (Qlang.Query.Dl tc));
  let nr = Qlang.Parser.parse_program "P(x) :- E(x,y). Q2(x) :- P(x). ?- Q2." in
  Alcotest.(check string) "datalognr" "DATALOGnr" (lang (Qlang.Query.Dl nr))

(* ---------- FO evaluation ---------- *)

let eval_q str = Qlang.Fo_eval.eval_query db (q str)

let test_eval_join () =
  let ans = eval_q "Q(x, z) := exists y. R(x, y) & S(y, z)" in
  check "join" true
    (Relation.equal ans
       (Relation.of_int_rows (Schema.make "Q" [ "x"; "z" ]) [ [ 1; 10 ]; [ 2; 20 ] ]))

let test_eval_selection_constants () =
  let ans = eval_q "Q(y) := R(2, y)" in
  check "constant selection" true
    (Relation.equal ans (Relation.of_int_rows (Schema.make "Q" [ "y" ]) [ [ 3 ] ]))

let test_eval_repeated_vars () =
  let rr = Relation.of_int_rows (Schema.make "W" [ "a"; "b" ]) [ [ 1; 1 ]; [ 1; 2 ] ] in
  let db = Database.add rr db in
  let ans = Qlang.Fo_eval.eval_query db (q "Q(x) := W(x, x)") in
  check "repeated vars" true
    (Relation.equal ans (Relation.of_int_rows (Schema.make "Q" [ "x" ]) [ [ 1 ] ]))

let test_eval_negation () =
  (* pairs over adom with x < y not in R *)
  let ans = eval_q "Q(x, y) := not R(x, y) & x < y" in
  (* adom = {1,2,3,4,10,20}: 15 ordered pairs minus 3 R-pairs *)
  check_int "negation" 12 (Relation.cardinal ans)

let test_eval_forall () =
  check "forall holds" true
    (Qlang.Fo_eval.holds db (f "forall x. (exists y. R(x, y)) -> x < 4"));
  check "forall fails" false
    (Qlang.Fo_eval.holds db (f "forall x. exists y. R(x, y)"))

let test_eval_disjunction_padding () =
  (* Or with different free variables pads over the active domain. *)
  let ans = eval_q "Q(x, y) := U(x) & (S(x, y) | U(y))" in
  (* U(1): y ∈ {1,2} via U(y); U(2): S(2,10) plus y ∈ {1,2} *)
  check_int "or padding" 5 (Relation.cardinal ans)

let test_eval_true_false () =
  check "true holds" true (Qlang.Fo_eval.holds db True);
  check "false fails" false (Qlang.Fo_eval.holds db False)

let test_eval_head_constants_adom () =
  (* A head variable bound only by a comparison with a constant: the
     constant is in adom(Q, D). *)
  let ans = eval_q "Q(x) := x = 99" in
  check "constant head" true
    (Relation.equal ans (Relation.of_int_rows (Schema.make "Q" [ "x" ]) [ [ 99 ] ]))

let test_eval_unknown_relation () =
  (try
     ignore (eval_q "Q(x) := Zorp(x)");
     Alcotest.fail "expected failure"
   with Failure msg -> check "unknown relation" true (msg = "Fo_eval: unknown relation Zorp"))

let test_eval_dist () =
  let dist = Qlang.Dist.add "num" Qlang.Dist.numeric Qlang.Dist.empty in
  let query = q "Q(x) := U(x) & dist[num](x, 1) <= 1" in
  let ans = Qlang.Fo_eval.eval_query ~dist db query in
  check_int "dist atom" 2 (Relation.cardinal ans)

let test_eval_nullary () =
  let ans = eval_q "Q() := exists x, y. R(x, y) & x > 2" in
  check_int "nullary true" 1 (Relation.cardinal ans);
  let ans2 = eval_q "Q() := exists x, y. R(x, y) & x > 9" in
  check_int "nullary false" 0 (Relation.cardinal ans2)

(* ---------- CQ planner vs FO evaluator ---------- *)

let test_cq_matches_fo_hand () =
  List.iter
    (fun str ->
      let query = q str in
      let a = Qlang.Fo_eval.eval_query db query in
      let b = Qlang.Cq_eval.eval db query in
      let c = Qlang.Cq_eval.eval ~strategy:Qlang.Cq_eval.Textual db query in
      check ("cq=fo: " ^ str) true (Relation.equal a b);
      check ("greedy=textual: " ^ str) true (Relation.equal b c))
    [
      "Q(x, z) := exists y. R(x, y) & S(y, z)";
      "Q(x) := R(x, y) & x != y & y <= 3";
      "Q(x, y) := R(x, y) | S(x, y)";
      "Q(x) := exists y. (R(x, y) | S(x, y))";
      "Q(x) := U(x) & x = 2";
      "Q(x, w) := U(x) & w = 0";
      "Q(x) := (exists y. R(x, y)) & (exists y. S(x, y))";
    ]

let test_cq_rejects_fo () =
  (try
     ignore (Qlang.Cq_eval.eval db (q "Q(x) := not U(x)"));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Qlang.Cq_eval.eval_cq db (q "Q(x) := R(x, y) | S(x, y)"));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_cq_matches_fo =
  let rng_gen = QCheck.Gen.(int_bound 1_000_000) in
  QCheck.Test.make ~name:"random CQ: planner = generic evaluator" ~count:60
    (QCheck.make rng_gen) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db =
        Workload.Random_db.database rng
          ~specs:[ ("R", 2); ("S", 2); ("T", 1) ]
          ~rows:6 ~domain:4
      in
      let query = Workload.Random_db.random_cq rng db ~natoms:3 ~nvars:4 in
      let a = Qlang.Fo_eval.eval_query db query in
      let b = Qlang.Cq_eval.eval db query in
      let c = Qlang.Cq_eval.eval ~strategy:Qlang.Cq_eval.Textual db query in
      Relation.equal a b && Relation.equal b c)

(* ---------- Datalog ---------- *)

let graph_db edges =
  Database.of_relations
    [ Relation.of_int_rows (Schema.make "E" [ "s"; "d" ]) edges ]

let tc = Qlang.Parser.parse_program "T(x,y) :- E(x,y). T(x,z) :- E(x,y), T(y,z). ?- T."

let reach_reference edges =
  (* Floyd–Warshall-style reference reachability. *)
  let nodes = List.sort_uniq compare (List.concat edges) in
  let reach = Hashtbl.create 16 in
  List.iter (function [ a; b ] -> Hashtbl.replace reach (a, b) () | _ -> ()) edges;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            List.iter
              (fun c ->
                if
                  Hashtbl.mem reach (a, b) && Hashtbl.mem reach (b, c)
                  && not (Hashtbl.mem reach (a, c))
                then begin
                  Hashtbl.replace reach (a, c) ();
                  changed := true
                end)
              nodes)
          nodes)
      nodes
  done;
  Hashtbl.fold (fun (a, b) () acc -> [ a; b ] :: acc) reach []

let test_datalog_tc () =
  let edges = [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 1 ]; [ 4; 5 ] ] in
  let db = graph_db edges in
  let expected =
    Relation.of_int_rows (Schema.make "T" [ "a0"; "a1" ]) (reach_reference edges)
  in
  check "semi-naive TC" true (Relation.equal (Qlang.Datalog.eval db tc) expected);
  check "naive TC" true
    (Relation.equal (Qlang.Datalog.eval ~strategy:Qlang.Datalog.Naive db tc) expected)

let prop_datalog_naive_eq_seminaive =
  QCheck.Test.make ~name:"datalog: naive = semi-naive on random graphs" ~count:40
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db = Workload.Random_db.graph rng ~nodes:6 ~edges:10 in
      Relation.equal
        (Qlang.Datalog.eval ~strategy:Qlang.Datalog.Naive db tc)
        (Qlang.Datalog.eval ~strategy:Qlang.Datalog.Semi_naive db tc))

let test_datalog_builtins () =
  let p =
    Qlang.Parser.parse_program
      "Small(x, y) :- E(x, y), x < y. ?- Small."
  in
  let db = graph_db [ [ 1; 2 ]; [ 3; 2 ]; [ 2; 2 ] ] in
  check_int "builtin filter" 1 (Relation.cardinal (Qlang.Datalog.eval db p))

let test_datalog_facts_and_constants () =
  let p =
    Qlang.Parser.parse_program
      "Start(1). Reach(x) :- Start(x). Reach(y) :- Reach(x), E(x, y). ?- Reach."
  in
  let db = graph_db [ [ 1; 2 ]; [ 2; 3 ]; [ 5; 6 ] ] in
  check_int "reachable from 1" 3 (Relation.cardinal (Qlang.Datalog.eval db p))

let test_datalog_check_errors () =
  let db = graph_db [ [ 1; 2 ] ] in
  let bad_safety =
    Qlang.Parser.parse_program "P(x, y) :- E(x, x). ?- P."
  in
  check "unsafe rejected" true
    (match Qlang.Datalog.check db bad_safety with Error _ -> true | Ok () -> false);
  let bad_arity = Qlang.Parser.parse_program "P(x) :- E(x). ?- P." in
  check "arity mismatch rejected" true
    (match Qlang.Datalog.check db bad_arity with Error _ -> true | Ok () -> false);
  let bad_goal = Qlang.Parser.parse_program "P(x) :- E(x, y). ?- Zorp." in
  check "unknown goal rejected" true
    (match Qlang.Datalog.check db bad_goal with Error _ -> true | Ok () -> false);
  let collision = Qlang.Parser.parse_program "E(x, y) :- E(y, x). ?- E." in
  check "EDB collision rejected" true
    (match Qlang.Datalog.check db collision with Error _ -> true | Ok () -> false)

let test_datalog_nonrecursive_detection () =
  check "tc recursive" false (Qlang.Datalog.is_nonrecursive tc);
  let nr =
    Qlang.Parser.parse_program "A(x) :- E(x, y). B(x) :- A(x). ?- B."
  in
  check "layered nonrecursive" true (Qlang.Datalog.is_nonrecursive nr);
  let mutual =
    Qlang.Parser.parse_program "A(x) :- B(x). B(x) :- A(x). B(x) :- E(x, y). ?- A."
  in
  check "mutual recursion" false (Qlang.Datalog.is_nonrecursive mutual)

let test_datalog_vs_fo_on_bounded_path () =
  (* Paths of length <= 2 expressible both ways. *)
  let p =
    Qlang.Parser.parse_program
      "P(x, y) :- E(x, y). P(x, z) :- E(x, y), E(y, z). ?- P."
  in
  let fo = q "Q(x, z) := E(x, z) | (exists y. E(x, y) & E(y, z))" in
  let db = graph_db [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 1; 3 ] ] in
  let a = Qlang.Datalog.eval db p in
  let b = Qlang.Fo_eval.eval_query db fo in
  check "datalog = FO on bounded paths" true
    (Relation.equal
       (Relation.rename (Schema.make "X" [ "a"; "b" ]) a)
       (Relation.rename (Schema.make "X" [ "a"; "b" ]) b))

(* ---------- parser / pretty round trips ---------- *)

let test_parse_pretty_round_trip () =
  List.iter
    (fun str ->
      let query = q str in
      let printed = Qlang.Pretty.query_to_string query in
      let reparsed = Qlang.Parser.parse_query printed in
      check ("round trip: " ^ str) true
        (equal_formula query.body reparsed.body && query.head = reparsed.head))
    [
      "Q(x, z) := exists y. R(x, y) & S(y, z)";
      "Q(x) := R(x, y) & (S(x, x) | U(y)) & x != y";
      "Q(x) := not (U(x) | U(x))";
      "Q(x) := forall y. R(x, y) -> x < y";
      "Q(x) := U(x) & dist[city](x, \"nyc\") <= 15";
      "Q(x) := R(x, -3) & x >= -3";
      "Q() := true & U(1)";
    ]

let test_parse_program_round_trip () =
  let src = "T(x, y) :- E(x, y).\nT(x, z) :- E(x, y), T(y, z), x < 5.\n?- T." in
  let p = Qlang.Parser.parse_program src in
  let p2 = Qlang.Parser.parse_program (Qlang.Pretty.program_to_string p) in
  check "program round trip" true (p = p2)

let test_parse_errors () =
  List.iter
    (fun str ->
      try
        ignore (Qlang.Parser.parse_query str);
        Alcotest.failf "expected parse error for %s" str
      with Qlang.Parser.Error _ -> ())
    [
      "Q(x) := R(x";
      "Q(x) :=";
      "Q(x := R(x)";
      "Q(x) := R(x) &";
      "Q(x) := exists . R(x)";
      "Q(3) := R(x)";
    ]

(* Random formulas for print/parse fuzzing. *)
let rec random_formula rng depth =
  let leaf () =
    match Random.State.int rng 4 with
    | 0 ->
        Atom
          {
            rel = [| "R"; "S"; "U" |].(Random.State.int rng 3);
            args =
              (let t () =
                 if Random.State.bool rng then Var ("v" ^ string_of_int (Random.State.int rng 3))
                 else Const (Value.Int (Random.State.int rng 4))
               in
               if Random.State.int rng 3 = 0 then [ t () ] else [ t (); t () ]);
          }
    | 1 ->
        Cmp
          ( [| Eq; Neq; Lt; Le; Gt; Ge |].(Random.State.int rng 6),
            Var ("v" ^ string_of_int (Random.State.int rng 3)),
            Const (Value.Int (Random.State.int rng 4)) )
    | 2 -> True
    | _ -> False
  in
  if depth = 0 then leaf ()
  else
    match Random.State.int rng 6 with
    | 0 -> And (random_formula rng (depth - 1), random_formula rng (depth - 1))
    | 1 -> Or (random_formula rng (depth - 1), random_formula rng (depth - 1))
    | 2 -> Not (random_formula rng (depth - 1))
    | 3 ->
        Exists
          ( [ "v" ^ string_of_int (Random.State.int rng 3) ],
            random_formula rng (depth - 1) )
    | 4 ->
        Forall
          ( [ "v" ^ string_of_int (Random.State.int rng 3) ],
            random_formula rng (depth - 1) )
    | _ -> leaf ()

let prop_pretty_parse_round_trip =
  QCheck.Test.make ~name:"print/parse round trip on random formulas" ~count:200
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f0 = random_formula rng 4 in
      let printed = Qlang.Pretty.formula_to_string f0 in
      let reparsed = Qlang.Parser.parse_formula printed in
      equal_formula f0 reparsed)

let test_parse_default_goal () =
  let p = Qlang.Parser.parse_program "A(x) :- E(x, y). B(x) :- A(x)." in
  Alcotest.(check string) "last head is goal" "B" p.Qlang.Datalog.answer

(* ---------- distance environments ---------- *)

let test_dist_functions () =
  let open Qlang.Dist in
  check "numeric" true (numeric (Value.Int 3) (Value.Int 7) = 4.);
  check "numeric non-int" true (numeric (Value.Str "a") (Value.Str "b") = infinity);
  check "numeric same" true (numeric (Value.Str "a") (Value.Str "a") = 0.);
  check "discrete" true
    (discrete (Value.Int 1) (Value.Int 2) = 1. && discrete (Value.Int 1) (Value.Int 1) = 0.);
  let t = table [ (Value.Str "nyc", Value.Str "ewr", 15.) ] in
  check "table forward" true (t (Value.Str "nyc") (Value.Str "ewr") = 15.);
  check "table symmetric" true (t (Value.Str "ewr") (Value.Str "nyc") = 15.);
  check "table self" true (t (Value.Str "nyc") (Value.Str "nyc") = 0.);
  check "table unknown" true (t (Value.Str "nyc") (Value.Str "lax") = infinity);
  let env = add "a" numeric (add "b" discrete empty) in
  check "names" true (names env = [ "a"; "b" ]);
  check "find" true (find env "a" (Value.Int 0) (Value.Int 2) = 2.);
  check "find_opt none" true (find_opt env "zz" = None);
  Alcotest.check_raises "find missing" Not_found (fun () ->
      let (_ : fn) = find env "zz" in
      ())

(* ---------- SP evaluator ---------- *)

let test_sp_eval () =
  let query = q "Q(x) := exists y. R(x, y) & x < 3 & y != 2" in
  let a = Core.Special.eval_sp db query in
  let b = Qlang.Fo_eval.eval_query db query in
  check "sp = fo" true (Relation.equal a b);
  try
    ignore (Core.Special.eval_sp db (q "Q(x) := R(x, y) & S(y, z)"));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let prop_sp_matches_fo =
  QCheck.Test.make ~name:"random SP: single-scan = generic evaluator" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db =
        Workload.Random_db.database rng ~specs:[ ("R", 3) ] ~rows:8 ~domain:5
      in
      let c = Random.State.int rng 5 in
      let query =
        q
          (Printf.sprintf "Q(x, y) := exists z. R(x, y, z) & x <= %d & y != %d" c
             (Random.State.int rng 5))
      in
      Relation.equal (Core.Special.eval_sp db query) (Qlang.Fo_eval.eval_query db query))

let () =
  Alcotest.run "qlang"
    [
      ( "ast",
        [
          Alcotest.test_case "free variables" `Quick test_free_vars;
          Alcotest.test_case "conjuncts/disjuncts" `Quick test_conjuncts_disjuncts;
          Alcotest.test_case "substitution scoping" `Quick test_subst;
          Alcotest.test_case "freshen" `Quick test_freshen;
          Alcotest.test_case "relation renaming" `Quick test_rename_rels;
          Alcotest.test_case "builtin semantics" `Quick test_cmp_semantics;
        ] );
      ( "fragment",
        [
          Alcotest.test_case "classification" `Quick test_fragments;
          Alcotest.test_case "edge cases" `Quick test_fragment_edges;
          QCheck_alcotest.to_alcotest prop_classify_monotone;
          Alcotest.test_case "query language" `Quick test_query_language;
        ] );
      ( "fo_eval",
        [
          Alcotest.test_case "join" `Quick test_eval_join;
          Alcotest.test_case "constant selection" `Quick test_eval_selection_constants;
          Alcotest.test_case "repeated variables" `Quick test_eval_repeated_vars;
          Alcotest.test_case "negation" `Quick test_eval_negation;
          Alcotest.test_case "forall / implication" `Quick test_eval_forall;
          Alcotest.test_case "disjunction padding" `Quick test_eval_disjunction_padding;
          Alcotest.test_case "true/false" `Quick test_eval_true_false;
          Alcotest.test_case "constants extend adom" `Quick test_eval_head_constants_adom;
          Alcotest.test_case "unknown relation" `Quick test_eval_unknown_relation;
          Alcotest.test_case "dist atoms" `Quick test_eval_dist;
          Alcotest.test_case "nullary queries" `Quick test_eval_nullary;
        ] );
      ( "cq_eval",
        [
          Alcotest.test_case "planner agrees with FO eval" `Quick test_cq_matches_fo_hand;
          Alcotest.test_case "rejects non-CQ" `Quick test_cq_rejects_fo;
          QCheck_alcotest.to_alcotest prop_cq_matches_fo;
        ] );
      ( "datalog",
        [
          Alcotest.test_case "transitive closure" `Quick test_datalog_tc;
          Alcotest.test_case "builtins in rules" `Quick test_datalog_builtins;
          Alcotest.test_case "facts and constants" `Quick test_datalog_facts_and_constants;
          Alcotest.test_case "check rejects bad programs" `Quick test_datalog_check_errors;
          Alcotest.test_case "recursion detection" `Quick test_datalog_nonrecursive_detection;
          Alcotest.test_case "agrees with FO on bounded paths" `Quick
            test_datalog_vs_fo_on_bounded_path;
          QCheck_alcotest.to_alcotest prop_datalog_naive_eq_seminaive;
        ] );
      ( "parser",
        [
          Alcotest.test_case "query round trips" `Quick test_parse_pretty_round_trip;
          Alcotest.test_case "program round trip" `Quick test_parse_program_round_trip;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "default goal" `Quick test_parse_default_goal;
          QCheck_alcotest.to_alcotest prop_pretty_parse_round_trip;
        ] );
      ( "dist",
        [ Alcotest.test_case "distance functions" `Quick test_dist_functions ] );
      ( "sp",
        [
          Alcotest.test_case "single-scan evaluation" `Quick test_sp_eval;
          QCheck_alcotest.to_alcotest prop_sp_matches_fo;
        ] );
    ]
