(* Every lower-bound reduction of the paper, executed and cross-validated
   against the independent logic solvers: for random instances, the logic
   side and the recommendation side of each theorem's "iff" must agree. *)

module Qbf = Solvers.Qbf
module Cnf = Solvers.Cnf
module Gen = Solvers.Gen
module Sat = Solvers.Sat
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_rng seed f = f (Random.State.make [| seed |])

(* ---------- Figure 4.1 gadgets ---------- *)

let test_gadget_relations () =
  check_int "I01" 2 (Relational.Relation.cardinal Reductions.Gadgets.r01);
  check_int "I∨" 4 (Relational.Relation.cardinal Reductions.Gadgets.ror);
  check_int "I∧" 4 (Relational.Relation.cardinal Reductions.Gadgets.rand);
  check_int "I¬" 2 (Relational.Relation.cardinal Reductions.Gadgets.rnot);
  (* truth-table semantics *)
  let row b a1 a2 = Relational.Tuple.of_ints [ b; a1; a2 ] in
  List.iter
    (fun (a1, a2) ->
      check "or row" true
        (Relational.Relation.mem
           (row (if a1 = 1 || a2 = 1 then 1 else 0) a1 a2)
           Reductions.Gadgets.ror);
      check "and row" true
        (Relational.Relation.mem
           (row (if a1 = 1 && a2 = 1 then 1 else 0) a1 a2)
           Reductions.Gadgets.rand))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

(* The CQ encodings of formulas agree with direct evaluation: for every
   assignment (as a package of the product query), the encoded output bit
   matches Cnf/Dnf.holds. *)
let test_gadget_encoders () =
  with_rng 5 (fun rng ->
      for _ = 1 to 5 do
        let cnf = Gen.cnf3 rng ~nvars:3 ~nclauses:3 in
        let g = Reductions.Gadgets.gen () in
        let out, conjs =
          Reductions.Gadgets.encode_cnf g ~var_of:Reductions.Gadgets.xvar cnf
        in
        let xs = [ "x1"; "x2"; "x3" ] in
        let q =
          {
            Qlang.Ast.name = "Q";
            head = xs @ [ out ];
            body =
              Qlang.Ast.conj (Reductions.Gadgets.assign_all xs @ conjs);
          }
        in
        let ans = Qlang.Fo_eval.eval_query Reductions.Gadgets.db q in
        Seq.iter
          (fun a ->
            let expected = Cnf.holds cnf a in
            let tup =
              Relational.Tuple.of_list
                (List.map
                   (fun v -> Relational.Value.of_bit v)
                   [ a.(1); a.(2); a.(3); expected ])
            in
            check "cnf encoding row" true (Relational.Relation.mem tup ans);
            (* and the complementary bit must be absent *)
            let bad =
              Relational.Tuple.of_list
                (List.map Relational.Value.of_bit
                   [ a.(1); a.(2); a.(3); not expected ])
            in
            check "cnf encoding functional" false (Relational.Relation.mem bad ans))
          (Cnf.assignments 3)
      done)

let test_gadget_dnf_encoder () =
  with_rng 11 (fun rng ->
      let dnf = Gen.dnf3 rng ~nvars:3 ~nterms:2 in
      let g = Reductions.Gadgets.gen () in
      let out, conjs =
        Reductions.Gadgets.encode_dnf g ~var_of:Reductions.Gadgets.xvar dnf
      in
      let xs = [ "x1"; "x2"; "x3" ] in
      let q =
        {
          Qlang.Ast.name = "Q";
          head = xs @ [ out ];
          body = Qlang.Ast.conj (Reductions.Gadgets.assign_all xs @ conjs);
        }
      in
      let ans = Qlang.Fo_eval.eval_query Reductions.Gadgets.db q in
      check_int "one row per assignment" 8 (Relational.Relation.cardinal ans);
      Seq.iter
        (fun a ->
          let tup =
            Relational.Tuple.of_list
              (List.map Relational.Value.of_bit
                 [ a.(1); a.(2); a.(3); Solvers.Dnf.holds dnf a ])
          in
          check "dnf row" true (Relational.Relation.mem tup ans))
        (Cnf.assignments 3))

(* ---------- the reduction iffs ---------- *)

let repeat n f = for seed = 1 to n do with_rng (seed * 37) f done

let test_compat_sigma2 () =
  repeat 12 (fun rng ->
      let phi = Gen.ea_dnf rng ~m:2 ~n:2 ~nterms:3 in
      let inst = Reductions.Sigma2.compat_instance phi in
      check "Lemma 4.2 iff"
        (Qbf.Ea_dnf.solve phi)
        (Reductions.Sigma2.compat_holds inst ~bound:0.))

let test_rpp_pi2 () =
  repeat 8 (fun rng ->
      let phi = Gen.ea_dnf rng ~m:2 ~n:2 ~nterms:3 in
      let inst, pkgs = Reductions.Sigma2.rpp_instance phi in
      check "Theorem 4.1 iff" (Qbf.Ea_dnf.solve phi) (not (Rpp.is_topk inst pkgs)))

let test_frp_sigma2max_enumerate () =
  repeat 8 (fun rng ->
      let phi = Gen.ea_dnf rng ~m:3 ~n:2 ~nterms:3 in
      let inst = Reductions.Sigma2.frp_instance phi in
      let expected =
        Option.map
          (fun xa -> [ Reductions.Sigma2.witness_package phi xa ])
          (Qbf.Ea_dnf.last_witness phi)
      in
      let got = Frp.enumerate inst ~k:1 in
      check "Theorem 5.1 maximum-Σ₂ᵖ iff" true
        (match expected, got with
        | None, None -> true
        | Some [ e ], Some [ g ] -> Package.equal e g
        | _ -> false))

let test_frp_sigma2max_oracle () =
  repeat 4 (fun rng ->
      let phi = Gen.ea_dnf rng ~m:3 ~n:2 ~nterms:3 in
      let inst = Reductions.Sigma2.frp_instance phi in
      let lo, hi = Reductions.Sigma2.frp_val_range phi in
      let expected =
        Option.map
          (fun xa -> [ Reductions.Sigma2.witness_package phi xa ])
          (Qbf.Ea_dnf.last_witness phi)
      in
      let got = Frp.oracle inst ~k:1 ~val_lo:lo ~val_hi:hi in
      check "oracle algorithm on the Σ₂ᵖ family" true
        (match expected, got with
        | None, None -> true
        | Some [ e ], Some [ g ] -> Package.equal e g
        | _ -> false))

let test_compat_np () =
  repeat 12 (fun rng ->
      let cnf = Gen.cnf3 rng ~nvars:4 ~nclauses:5 in
      let inst = Reductions.Np_data.compat_instance cnf in
      check "Lemma 4.4 iff" (Sat.satisfiable cnf)
        (Reductions.Sigma2.compat_holds inst
           ~bound:(Reductions.Np_data.compat_bound cnf)))

let test_rpp_conp_data () =
  repeat 8 (fun rng ->
      let cnf = Gen.cnf3 rng ~nvars:4 ~nclauses:4 in
      let inst, pkgs = Reductions.Np_data.rpp_instance cnf in
      check "Theorem 4.3 iff" (Sat.satisfiable cnf) (not (Rpp.is_topk inst pkgs)))

let test_rpp_dp () =
  repeat 6 (fun rng ->
      let phi1 = Gen.cnf3 rng ~nvars:3 ~nclauses:4 in
      let phi2 = Gen.cnf3 rng ~nvars:3 ~nclauses:6 in
      let inst, pkgs = Reductions.Satunsat.rpp_instance phi1 phi2 in
      check "Theorem 4.5 iff"
        (Sat.satisfiable phi1 && not (Sat.satisfiable phi2))
        (Rpp.is_topk inst pkgs))

let test_frp_maxsat () =
  repeat 6 (fun rng ->
      let mi = Gen.maxsat rng ~nvars:4 ~nclauses:4 ~max_weight:10 in
      let inst = Reductions.Np_data.maxsat_instance mi in
      let opt, _ = Solvers.Maxsat.solve mi in
      let got =
        match Frp.enumerate inst ~k:1 with
        | Some [ p ] -> int_of_float (Rating.eval inst.Instance.value p)
        | _ -> -1
      in
      check_int "Theorem 5.1 FPᴺᴾ iff" opt got)

let test_frp_maxsat_oracle () =
  repeat 3 (fun rng ->
      let mi = Gen.maxsat rng ~nvars:4 ~nclauses:3 ~max_weight:6 in
      let inst = Reductions.Np_data.maxsat_instance mi in
      let lo, hi = Reductions.Np_data.maxsat_val_range mi in
      let opt, _ = Solvers.Maxsat.solve mi in
      let got =
        match Frp.oracle inst ~k:1 ~val_lo:lo ~val_hi:hi with
        | Some [ p ] -> int_of_float (Rating.eval inst.Instance.value p)
        | _ -> -1
      in
      check_int "oracle algorithm on MAX-WEIGHT SAT" opt got)

let test_mbp_d2p () =
  repeat 5 (fun rng ->
      let phi1 = Gen.ea_dnf rng ~m:2 ~n:2 ~nterms:2 in
      let phi2 = Gen.ea_dnf rng ~m:2 ~n:2 ~nterms:2 in
      let inst, b = Reductions.Mbp_pair.instance phi1 phi2 in
      check "Theorem 5.2 D₂ᵖ iff"
        (Qbf.Pair.solve { Qbf.Pair.phi1; phi2 })
        (Mbp.is_max_bound inst ~k:1 ~bound:b))

let test_mbp_dp_data () =
  repeat 6 (fun rng ->
      let phi1 = Gen.cnf3 rng ~nvars:3 ~nclauses:3 in
      let phi2 = Gen.cnf3 rng ~nvars:3 ~nclauses:6 in
      let inst, b = Reductions.Satunsat.mbp_instance phi1 phi2 in
      check "Theorem 5.2 DP iff"
        (Sat.satisfiable phi1 && not (Sat.satisfiable phi2))
        (Mbp.is_max_bound inst ~k:1 ~bound:b))

let test_cpp_pi1 () =
  repeat 5 (fun rng ->
      let psi = Gen.dnf3 rng ~nvars:4 ~nterms:3 in
      let inst, b = Reductions.Counting.pi1_instance ~nx:2 ~ny:2 psi in
      check_int "Theorem 5.3 #Π₁SAT parsimony"
        (Solvers.Count.sharp_pi1 ~nx:2 ~ny:2 psi)
        (Cpp.count inst ~bound:b))

let test_cpp_sigma1 () =
  repeat 5 (fun rng ->
      let psi = Gen.cnf3 rng ~nvars:4 ~nclauses:3 in
      let inst, b = Reductions.Counting.sigma1_instance ~nx:2 ~ny:2 psi in
      check_int "Theorem 5.3 #Σ₁SAT parsimony"
        (Solvers.Count.sharp_sigma1 ~nx:2 ~ny:2 psi)
        (Cpp.count inst ~bound:b))

let test_cpp_sharpsat () =
  repeat 6 (fun rng ->
      let cnf = Gen.cnf3 rng ~nvars:4 ~nclauses:3 in
      let inst, b, mult = Reductions.Np_data.sharpsat_instance cnf in
      check_int "Theorem 5.3 #SAT parsimony"
        (Solvers.Count.count_models cnf)
        (mult * Cpp.count inst ~bound:b))

let test_membership_fo () =
  repeat 8 (fun rng ->
      let qbf = Gen.qbf rng ~nvars:4 ~nclauses:4 in
      let db, q = Reductions.Membership.qbf_to_fo qbf in
      let inst, pkgs =
        Reductions.Membership.rpp_of_query db (Qlang.Query.Fo q) [||]
      in
      check "Theorem 4.1 FO membership iff" (Qbf.solve qbf) (Rpp.is_topk inst pkgs);
      (* and the MBP variant (Theorem 5.2) *)
      check "Theorem 5.2 FO membership iff" (Qbf.solve qbf)
        (Mbp.is_max_bound inst ~k:1 ~bound:1.))

let test_membership_datalognr () =
  repeat 8 (fun rng ->
      let qbf = Gen.qbf rng ~nvars:4 ~nclauses:4 in
      let db, prog = Reductions.Membership.qbf_to_datalognr qbf in
      check "program is nonrecursive" true (Qlang.Datalog.is_nonrecursive prog);
      let inst, pkgs =
        Reductions.Membership.rpp_of_query db (Qlang.Query.Dl prog) [||]
      in
      check "Theorem 4.1 DATALOGnr membership iff" (Qbf.solve qbf)
        (Rpp.is_topk inst pkgs))

let test_membership_datalog_tc () =
  (* Recursive Datalog membership: reachability on a chain. *)
  let db = Reductions.Membership.chain_db 5 in
  let reachable = Relational.Tuple.of_ints [ 0; 5 ] in
  let not_reachable = Relational.Tuple.of_ints [ 5; 0 ] in
  let check_mem t expected =
    let inst, pkgs =
      Reductions.Membership.rpp_of_query db
        (Qlang.Query.Dl Reductions.Membership.tc_program)
        t
    in
    check "DATALOG membership iff" expected (Rpp.is_topk inst pkgs)
  in
  check_mem reachable true;
  check_mem not_reachable false

let test_multi_qbf_frp () =
  repeat 5 (fun rng ->
      let qbfs =
        List.init 3 (fun _ -> Gen.qbf rng ~nvars:3 ~nclauses:3)
      in
      let inst, (lo, hi), expected = Reductions.Membership.multi_qbf_frp qbfs in
      (match Frp.enumerate inst ~k:1 with
      | Some [ got ] -> check "FPSPACE(poly) bit string (enumerate)" true
          (Package.equal got expected)
      | _ -> Alcotest.fail "expected a top-1 package");
      match Frp.oracle inst ~k:1 ~val_lo:lo ~val_hi:hi with
      | Some [ got ] ->
          check "FPSPACE(poly) bit string (oracle)" true (Package.equal got expected)
      | _ -> Alcotest.fail "expected a top-1 package (oracle)")

let test_ea_dnf_datalognr_witnesses () =
  repeat 6 (fun rng ->
      let phi = Gen.ea_dnf rng ~m:3 ~n:2 ~nterms:3 in
      let db, prog = Reductions.Membership.ea_dnf_to_datalognr phi in
      check "nonrecursive" true (Qlang.Datalog.is_nonrecursive prog);
      let w = Qlang.Datalog.eval db prog in
      (* W(x̄) must hold exactly on the ∀Y-witnesses *)
      Seq.iter
        (fun xa ->
          let tup =
            Relational.Tuple.of_list
              (List.init 3 (fun i -> Relational.Value.of_bit xa.(i + 1)))
          in
          check "witness relation" (Qbf.Ea_dnf.forall_y_holds phi xa)
            (Relational.Relation.mem tup w))
        (Cnf.assignments 3))

let test_qbf_count_datalognr () =
  repeat 5 (fun rng ->
      let phi = Gen.ea_dnf rng ~m:3 ~n:2 ~nterms:3 in
      let inst, b = Reductions.Membership.qbf_count_instance phi in
      check_int "Theorem 5.3 #·PSPACE parsimony"
        (Qbf.Ea_dnf.count_witnesses phi)
        (Cpp.count inst ~bound:b))

let test_items_frp_maxsat () =
  repeat 6 (fun rng ->
      let mi = Gen.maxsat rng ~nvars:4 ~nclauses:4 ~max_weight:10 in
      let it = Reductions.Items_hard.frp_instance mi in
      let opt, _ = Solvers.Maxsat.solve mi in
      let got =
        match Items.topk it ~k:1 with
        | Some [ t ] -> Reductions.Items_hard.item_weight mi t
        | _ -> -1
      in
      check_int "Theorem 6.4 FRP items" opt got)

let test_items_mbp_satunsat () =
  repeat 6 (fun rng ->
      let phi1 = Gen.cnf3 rng ~nvars:3 ~nclauses:3 in
      let phi2 = Gen.cnf3 rng ~nvars:3 ~nclauses:7 in
      let it, b = Reductions.Satunsat.items_mbp_instance phi1 phi2 in
      check "Theorem 6.4 MBP items iff"
        (Sat.satisfiable phi1 && not (Sat.satisfiable phi2))
        (Items.is_max_bound it ~k:1 ~bound:b))

(* The clause database: structural invariants. *)
let test_clause_db () =
  with_rng 3 (fun rng ->
      let cnf = Gen.cnf3 rng ~nvars:4 ~nclauses:3 in
      let rel = Reductions.Clause_db.relation cnf in
      check_int "7 tuples per clause" 21 (Relational.Relation.cardinal rel);
      Relational.Relation.iter
        (fun t ->
          let cid = Reductions.Clause_db.tuple_cid t in
          check "cid in range" true (cid >= 1 && cid <= 3);
          let asg = Reductions.Clause_db.tuple_assignment t in
          check_int "three vars" 3 (List.length asg))
        rel);
  (* consistency predicate *)
  let t1 = Relational.Tuple.of_ints [ 1; 1; 0; 2; 1; 3; 0 ] in
  let t2 = Relational.Tuple.of_ints [ 2; 1; 0; 4; 1; 5; 0 ] in
  let t3 = Relational.Tuple.of_ints [ 2; 1; 1; 4; 1; 5; 0 ] in
  let t1' = Relational.Tuple.of_ints [ 1; 1; 1; 2; 0; 3; 0 ] in
  check "consistent pair" true
    (Reductions.Clause_db.package_consistent (Package.of_tuples [ t1; t2 ]));
  check "var conflict" false
    (Reductions.Clause_db.package_consistent (Package.of_tuples [ t1; t3 ]));
  check "same cid" false
    (Reductions.Clause_db.package_consistent (Package.of_tuples [ t1; t1' ]))

let () =
  Alcotest.run "reductions"
    [
      ( "gadgets",
        [
          Alcotest.test_case "Figure 4.1 relations" `Quick test_gadget_relations;
          Alcotest.test_case "CNF encoder semantics" `Quick test_gadget_encoders;
          Alcotest.test_case "DNF encoder semantics" `Quick test_gadget_dnf_encoder;
          Alcotest.test_case "clause database" `Quick test_clause_db;
        ] );
      ( "combined-complexity",
        [
          Alcotest.test_case "Lemma 4.2 (compat, Σ₂ᵖ)" `Quick test_compat_sigma2;
          Alcotest.test_case "Theorem 4.1 (RPP, Π₂ᵖ)" `Quick test_rpp_pi2;
          Alcotest.test_case "Theorem 5.1 (FRP max-Σ₂ᵖ, enumerate)" `Quick
            test_frp_sigma2max_enumerate;
          Alcotest.test_case "Theorem 5.1 (FRP max-Σ₂ᵖ, oracle)" `Slow
            test_frp_sigma2max_oracle;
          Alcotest.test_case "Theorem 4.5 (RPP no-Qc, DP)" `Quick test_rpp_dp;
          Alcotest.test_case "Theorem 5.2 (MBP, D₂ᵖ)" `Quick test_mbp_d2p;
          Alcotest.test_case "Theorem 5.3 (CPP, #Π₁SAT)" `Quick test_cpp_pi1;
          Alcotest.test_case "Theorem 5.3 (CPP no-Qc, #Σ₁SAT)" `Quick test_cpp_sigma1;
        ] );
      ( "data-complexity",
        [
          Alcotest.test_case "Lemma 4.4 (compat, NP)" `Quick test_compat_np;
          Alcotest.test_case "Theorem 4.3 (RPP, coNP)" `Quick test_rpp_conp_data;
          Alcotest.test_case "Theorem 5.1 (FRP, MAX-WEIGHT SAT)" `Quick test_frp_maxsat;
          Alcotest.test_case "Theorem 5.1 (FRP oracle on MAX-WEIGHT SAT)" `Slow
            test_frp_maxsat_oracle;
          Alcotest.test_case "Theorem 5.2 (MBP, SAT-UNSAT)" `Quick test_mbp_dp_data;
          Alcotest.test_case "Theorem 5.3 (CPP, #SAT)" `Quick test_cpp_sharpsat;
        ] );
      ( "membership",
        [
          Alcotest.test_case "Q3SAT → FO" `Quick test_membership_fo;
          Alcotest.test_case "Q3SAT → DATALOGnr" `Quick test_membership_datalognr;
          Alcotest.test_case "reachability → DATALOG" `Quick test_membership_datalog_tc;
          Alcotest.test_case "Theorem 5.1 (FRP FPSPACE(poly), bit strings)" `Quick
            test_multi_qbf_frp;
          Alcotest.test_case "∀Y-witness relation in DATALOGnr" `Quick
            test_ea_dnf_datalognr_witnesses;
          Alcotest.test_case "Theorem 5.3 (CPP #·PSPACE)" `Quick
            test_qbf_count_datalognr;
        ] );
      ( "items",
        [
          Alcotest.test_case "Theorem 6.4 (FRP items)" `Quick test_items_frp_maxsat;
          Alcotest.test_case "Theorem 6.4 (MBP items)" `Quick test_items_mbp_satunsat;
        ] );
    ]
