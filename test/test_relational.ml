(* Tests for the relational substrate: values, tuples, schemas, relations,
   databases and the textual format. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module Relation = Relational.Relation
module Database = Relational.Database

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- values ---------- *)

let test_value_order () =
  check "bool < int" true (Value.compare (Value.Bool true) (Value.Int 0) < 0);
  check "int < str" true (Value.compare (Value.Int 99) (Value.Str "a") < 0);
  check "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  check "str order" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  check "equal reflexive" true (Value.equal (Value.Str "x") (Value.Str "x"))

let test_value_round_trip () =
  let vals =
    [ Value.Int 42; Value.Int (-7); Value.Str "hello world"; Value.Str "";
      Value.Bool true; Value.Bool false; Value.Str "with \"quotes\"" ]
  in
  List.iter
    (fun v ->
      check "round trip" true (Value.equal v (Value.of_string (Value.to_string v))))
    vals

let test_value_of_string_bare () =
  check "bare word is Str" true
    (Value.equal (Value.of_string "nyc") (Value.Str "nyc"));
  check "int literal" true (Value.equal (Value.of_string " 12 ") (Value.Int 12));
  check "true" true (Value.equal (Value.of_string "true") (Value.Bool true))

let test_value_bits () =
  check "vtrue" true (Value.equal Value.vtrue (Value.Int 1));
  check "vfalse" true (Value.equal Value.vfalse (Value.Int 0));
  check "of_bit" true (Value.equal (Value.of_bit true) Value.vtrue);
  check_int "int_exn" 5 (Value.int_exn (Value.Int 5));
  Alcotest.check_raises "int_exn on Str" (Invalid_argument "Value.int_exn")
    (fun () -> ignore (Value.int_exn (Value.Str "x")))

(* ---------- tuples ---------- *)

let test_tuple_basics () =
  let t = Tuple.of_ints [ 1; 2; 3 ] in
  check_int "arity" 3 (Tuple.arity t);
  check "get" true (Value.equal (Tuple.get t 1) (Value.Int 2));
  Alcotest.check_raises "get out of range" (Invalid_argument "Tuple.get")
    (fun () -> ignore (Tuple.get t 3));
  let u = Tuple.concat t (Tuple.of_ints [ 4 ]) in
  check_int "concat arity" 4 (Tuple.arity u);
  check "project" true
    (Tuple.equal (Tuple.project [ 2; 0; 0 ] t) (Tuple.of_ints [ 3; 1; 1 ]))

let test_tuple_order () =
  check "lex order" true
    (Tuple.compare (Tuple.of_ints [ 1; 2 ]) (Tuple.of_ints [ 1; 3 ]) < 0);
  check "shorter first" true
    (Tuple.compare (Tuple.of_ints [ 9 ]) (Tuple.of_ints [ 0; 0 ]) < 0);
  check "equal" true (Tuple.equal (Tuple.of_ints [ 1 ]) (Tuple.of_ints [ 1 ]))

(* ---------- schemas ---------- *)

let test_schema () =
  let s = Schema.make "R" [ "a"; "b"; "c" ] in
  check_int "arity" 3 (Schema.arity s);
  check_int "attr_index" 1 (Schema.attr_index s "b");
  check_str "qualified" "R.c" (Schema.qualified s 2);
  Alcotest.check_raises "duplicate attr"
    (Invalid_argument "Schema.make: duplicate attribute in R") (fun () ->
      ignore (Schema.make "R" [ "a"; "a" ]))

(* ---------- relations ---------- *)

let sch2 = Schema.make "R" [ "a"; "b" ]
let r_123 = Relation.of_int_rows sch2 [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]

let test_relation_set_ops () =
  let r2 = Relation.of_int_rows sch2 [ [ 2; 3 ]; [ 9; 9 ] ] in
  check_int "union" 4 (Relation.cardinal (Relation.union r_123 r2));
  check_int "inter" 1 (Relation.cardinal (Relation.inter r_123 r2));
  check_int "diff" 2 (Relation.cardinal (Relation.diff r_123 r2));
  check "subset" true (Relation.subset (Relation.inter r_123 r2) r_123);
  check "mem" true (Relation.mem (Tuple.of_ints [ 1; 2 ]) r_123);
  check "not mem" false (Relation.mem (Tuple.of_ints [ 2; 2 ]) r_123)

let test_relation_dedup () =
  let r = Relation.of_int_rows sch2 [ [ 1; 1 ]; [ 1; 1 ] ] in
  check_int "dedup" 1 (Relation.cardinal r)

let test_relation_arity_check () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation: tuple arity 3 does not match schema R/2")
    (fun () -> ignore (Relation.of_list sch2 [ Tuple.of_ints [ 1; 2; 3 ] ]))

let test_relation_project_product () =
  let p =
    Relation.project (Schema.make "P" [ "a" ]) [ 0 ] r_123
  in
  check_int "project" 3 (Relation.cardinal p);
  let prod =
    Relation.product (Schema.make "X" [ "a"; "b"; "c"; "d" ]) r_123 r_123
  in
  check_int "product" 9 (Relation.cardinal prod)

let test_relation_values () =
  let vs = Relation.values r_123 in
  check_int "distinct values" 4 (List.length vs)

(* ---------- databases ---------- *)

let db = Database.of_relations [ r_123 ]

let test_database_basics () =
  check_int "size" 3 (Database.size db);
  check "mem" true (Database.mem db "R");
  check "find_opt none" true (Database.find_opt db "S" = None);
  check_int "adom" 4 (List.length (Database.active_domain db));
  let db2 = Database.insert_tuple "R" (Tuple.of_ints [ 7; 8 ]) db in
  check_int "insert" 4 (Database.size db2);
  check_int "original untouched" 3 (Database.size db);
  let db3 = Database.delete_tuple "R" (Tuple.of_ints [ 1; 2 ]) db2 in
  check_int "delete" 3 (Database.size db3);
  check "equal after noop" true
    (Database.equal db (Database.delete_tuple "R" (Tuple.of_ints [ 0; 0 ]) db))

let test_database_duplicate_rejected () =
  Alcotest.check_raises "duplicate relation"
    (Invalid_argument "Database.of_relations: duplicate relation R") (fun () ->
      ignore (Database.of_relations [ r_123; r_123 ]))

let test_database_round_trip () =
  let db =
    Database.of_relations
      [
        r_123;
        Relation.of_list
          (Schema.make "S" [ "x"; "y" ])
          [
            Tuple.of_list [ Value.Str "a b"; Value.Int 3 ];
            Tuple.of_list [ Value.Str "comma, inside"; Value.Bool true ];
          ];
        Relation.empty (Schema.make "T" [ "z" ]);
      ]
  in
  let db' = Database.of_string (Database.to_string db) in
  check "round trip" true (Database.equal db db')

let test_database_parse_errors () =
  (try
     ignore (Database.of_string "1,2\n");
     Alcotest.fail "expected failure"
   with Failure msg ->
     check "orphan tuple" true
       (String.length msg > 0
       && String.sub msg 0 18 = "Database.of_string"));
  try
    ignore (Database.of_string "R(a,b)\n1,2,3\n");
    Alcotest.fail "expected failure"
  with Failure _ -> ()

let test_database_parse_comments () =
  let db = Database.of_string "# comment\nR(a,b)\n1,2\n\n# more\n2,3\n" in
  check_int "parsed" 2 (Database.size db)

(* ---------- statistics ---------- *)

let test_stats () =
  let stats = Relational.Stats.of_relation r_123 in
  check_int "rows" 3 stats.Relational.Stats.rows;
  check_int "distinct col 0" 3 stats.Relational.Stats.columns.(0).Relational.Stats.distinct;
  check "min" true
    (stats.Relational.Stats.columns.(0).Relational.Stats.min_v = Some (Value.Int 1));
  check "max" true
    (stats.Relational.Stats.columns.(1).Relational.Stats.max_v = Some (Value.Int 4));
  Alcotest.(check (float 1e-9)) "eq selectivity" (1. /. 3.)
    (Relational.Stats.eq_selectivity stats 0);
  Alcotest.(check (float 1e-9)) "join estimate" 3.
    (Relational.Stats.join_size_estimate stats 0 stats 1);
  let empty_stats = Relational.Stats.of_relation (Relation.empty sch2) in
  Alcotest.(check (float 1e-9)) "empty selectivity" 0.
    (Relational.Stats.eq_selectivity empty_stats 0);
  check_int "per-db stats" 1 (List.length (Relational.Stats.of_database db))

(* ---------- concurrent cache forcing ---------- *)

(* Regression test for the derived-cache forcing discipline: several
   domains force every lazy structure of the same relation value at
   once.  The build runs outside the cache lock with first-completed-
   wins publication, so the race must be an idempotent double-force —
   same answers as a sequential run, one published array afterwards,
   never a torn cache or a deadlock. *)
let test_concurrent_forcing () =
  let sch = Schema.make "R" [ "a"; "b"; "c" ] in
  let rel =
    Relation.of_int_rows sch
      (List.init 200 (fun i -> [ i mod 17; i mod 5; i ]))
  in
  (* sequential baseline on an identical (but distinct) relation value *)
  let base =
    Relation.of_int_rows sch
      (List.init 200 (fun i -> [ i mod 17; i mod 5; i ]))
  in
  let expect_arr = Relation.to_array base in
  let expect_vals = Relation.values base in
  let expect_probe = Relation.select_eq base 0 (Value.Int 3) in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            (* stagger the entry points so different domains race
               different caches first *)
            let order =
              if d mod 2 = 0 then
                [ `Arr; `Mem; `Idx; `Vals; `Cols; `Counts ]
              else [ `Counts; `Cols; `Vals; `Idx; `Mem; `Arr ]
            in
            List.map
              (fun what ->
                match what with
                | `Arr -> Array.length (Relation.to_array rel)
                | `Mem ->
                    if Relation.fast_mem rel (List.hd (Relation.to_list rel))
                    then 1
                    else 0
                | `Idx -> List.length (Relation.select_eq rel 0 (Value.Int 3))
                | `Vals -> List.length (Relation.values rel)
                | `Cols -> Relational.Column.rows (Relation.columns rel)
                | `Counts -> Array.length (Relation.col_counts rel))
              order))
  in
  let results = List.map Domain.join domains in
  List.iteri
    (fun d counts ->
      List.iter
        (fun n -> check ("domain " ^ string_of_int d ^ " nonzero") true (n > 0))
        counts)
    results;
  (* all domains agree with the sequential baseline *)
  check_int "array" (Array.length expect_arr) (Array.length (Relation.to_array rel));
  check "values" true (Relation.values rel = expect_vals);
  check "probe" true
    (List.map Tuple.to_list (Relation.select_eq rel 0 (Value.Int 3))
    = List.map Tuple.to_list expect_probe);
  (* exactly one array was published: later calls return it physically *)
  check "published once" true (Relation.to_array rel == Relation.to_array rel)

(* ---------- serialization edge cases ---------- *)

(* Strings whose printed form collides with the row / header / comment
   grammar.  Each must survive to_string/of_string unchanged. *)
let nasty_strings =
  [
    "line\nbreak"; "tab\there"; "a\"b\"c"; "\\"; "\\\""; "a,b"; "]";
    "[database]"; "R(a,b)"; "# not a comment"; "  padded  "; "\"";
    "trailing\\"; "\127\128\255";
  ]

let test_value_adversarial_round_trip () =
  List.iter
    (fun s ->
      let v = Value.Str s in
      check ("round trip " ^ String.escaped s) true
        (Value.equal v (Value.of_string (Value.to_string v))))
    nasty_strings

let test_value_of_string_rejects () =
  let rejects s =
    match Value.of_string s with
    | exception Invalid_argument _ -> ()
    | v ->
        Alcotest.failf "of_string %S should be rejected, got %s" s
          (Value.to_string v)
  in
  (* Trailing junk after a closing quote and unterminated quotes used to
     be silently mangled; both must now raise. *)
  rejects "\"a\"b";
  rejects "\"a\" \"b\"";
  rejects "\"unterminated";
  rejects "\""

let test_database_adversarial_round_trip () =
  let sch = Schema.make "S" [ "k"; "s" ] in
  let rows =
    List.mapi
      (fun i s -> Tuple.of_list [ Value.Int i; Value.Str s ])
      nasty_strings
  in
  let db = Database.of_relations [ Relation.of_list sch rows ] in
  check "adversarial db round trips" true
    (Database.equal db (Database.of_string (Database.to_string db)))

let test_database_to_string_guard () =
  (* Relation / attribute names are emitted verbatim into header lines, so
     one that collides with the grammar must be refused loudly instead of
     producing a file that parses back differently. *)
  let rejects name attrs =
    let db =
      Database.of_relations
        [ Relation.of_list (Schema.make name attrs) [ Tuple.of_ints [ 1 ] ] ]
    in
    match Database.to_string db with
    | exception Invalid_argument msg ->
        check "names the offender" true
          (String.length msg > 0
          && String.sub msg 0 18 = "Database.to_string")
    | _ -> Alcotest.failf "to_string should reject %s(%s)" name
             (String.concat ";" attrs)
  in
  rejects "bad,name" [ "a" ];
  rejects "#lead" [ "a" ];
  rejects "[sec" [ "a" ];
  rejects "multi\nline" [ "a" ];
  rejects "R" [ "a(b" ]

let test_database_unterminated_row_quote () =
  match Database.of_string "R(a)\n\"open\n" with
  | exception Failure msg ->
      check "mentions the line" true
        (String.length msg > 0
        && String.sub msg 0 18 = "Database.of_string")
  | _ -> Alcotest.fail "unterminated quote should be rejected"

let test_stats_bounds () =
  let stats = Relational.Stats.of_relation r_123 in
  let expect_msg f =
    match f () with
    | exception Failure msg ->
        check "names relation and column" true
          (String.sub msg 0 6 = "Stats:"
          && String.length msg > 0
          (* the diagnosis must say which relation and which column *)
          && String.index_opt msg 'R' <> None)
    | _ -> Alcotest.fail "out-of-range column should be rejected"
  in
  expect_msg (fun () -> Relational.Stats.eq_selectivity stats 7);
  expect_msg (fun () -> Relational.Stats.eq_selectivity stats (-1));
  expect_msg (fun () ->
      Relational.Stats.join_size_estimate stats 0 stats 9);
  Alcotest.check_raises "exact message"
    (Failure "Stats: relation R has no column 7 (arity 2)") (fun () ->
      ignore (Relational.Stats.eq_selectivity stats 7))

(* ---------- qcheck properties ---------- *)

let tuple_gen =
  QCheck.Gen.(list_size (int_bound 2 >|= fun n -> n + 1) (int_bound 5))

let relation_of l = Relation.of_int_rows sch2 (List.map (fun (a, b) -> [ a; b ]) l)

let pairs_gen = QCheck.(small_list (pair (int_bound 5) (int_bound 5)))

let prop_union_commutes =
  QCheck.Test.make ~name:"relation union commutes" ~count:100
    QCheck.(pair pairs_gen pairs_gen)
    (fun (xs, ys) ->
      Relation.equal
        (Relation.union (relation_of xs) (relation_of ys))
        (Relation.union (relation_of ys) (relation_of xs)))

let prop_diff_inter =
  QCheck.Test.make ~name:"diff + inter partitions" ~count:100
    QCheck.(pair pairs_gen pairs_gen)
    (fun (xs, ys) ->
      let a = relation_of xs and b = relation_of ys in
      Relation.cardinal (Relation.diff a b) + Relation.cardinal (Relation.inter a b)
      = Relation.cardinal a)

let prop_tuple_compare_total =
  QCheck.Test.make ~name:"tuple compare total order" ~count:100
    QCheck.(triple (list_of_size (QCheck.Gen.return 2) (int_bound 4))
              (list_of_size (QCheck.Gen.return 2) (int_bound 4))
              (list_of_size (QCheck.Gen.return 2) (int_bound 4)))
    (fun (a, b, c) ->
      let ta = Tuple.of_ints a and tb = Tuple.of_ints b and tc = Tuple.of_ints c in
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (Tuple.compare ta tb) = -sgn (Tuple.compare tb ta)
      (* transitivity of <= *)
      && (not (Tuple.compare ta tb <= 0 && Tuple.compare tb tc <= 0)
         || Tuple.compare ta tc <= 0))

let prop_db_round_trip =
  QCheck.Test.make ~name:"database text round trip" ~count:50 pairs_gen
    (fun xs ->
      let db = Database.of_relations [ relation_of xs ] in
      Database.equal db (Database.of_string (Database.to_string db)))

(* Strings over the characters most likely to break the row grammar. *)
let hostile_string =
  QCheck.string_gen_of_size (QCheck.Gen.int_bound 8)
    (QCheck.Gen.oneofl
       [ 'a'; 'z'; '"'; '\\'; ','; '\n'; '\r'; '\t'; '#'; '['; ']'; '('; ')';
         ' ' ])

let prop_db_round_trip_hostile =
  QCheck.Test.make ~name:"database round trip with hostile strings" ~count:200
    QCheck.(small_list hostile_string)
    (fun ss ->
      let sch = Schema.make "S" [ "k"; "s" ] in
      let rows =
        List.mapi
          (fun i s -> Tuple.of_list [ Value.Int i; Value.Str s ])
          ss
      in
      let db = Database.of_relations [ Relation.of_list sch rows ] in
      Database.equal db (Database.of_string (Database.to_string db)))

let prop_value_round_trip_hostile =
  QCheck.Test.make ~name:"value round trip with hostile strings" ~count:500
    hostile_string
    (fun s ->
      let v = Value.Str s in
      Value.equal v (Value.of_string (Value.to_string v)))

let () =
  ignore tuple_gen;
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "total order" `Quick test_value_order;
          Alcotest.test_case "to/of_string round trip" `Quick test_value_round_trip;
          Alcotest.test_case "of_string bare words" `Quick test_value_of_string_bare;
          Alcotest.test_case "boolean helpers" `Quick test_value_bits;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "ordering" `Quick test_tuple_order;
        ] );
      ("schema", [ Alcotest.test_case "basics" `Quick test_schema ]);
      ( "relation",
        [
          Alcotest.test_case "set operations" `Quick test_relation_set_ops;
          Alcotest.test_case "deduplication" `Quick test_relation_dedup;
          Alcotest.test_case "arity checking" `Quick test_relation_arity_check;
          Alcotest.test_case "project and product" `Quick test_relation_project_product;
          Alcotest.test_case "values" `Quick test_relation_values;
        ] );
      ( "database",
        [
          Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "duplicate rejected" `Quick test_database_duplicate_rejected;
          Alcotest.test_case "text round trip" `Quick test_database_round_trip;
          Alcotest.test_case "parse errors" `Quick test_database_parse_errors;
          Alcotest.test_case "comments and blanks" `Quick test_database_parse_comments;
        ] );
      ( "serialization-edges",
        [
          Alcotest.test_case "adversarial value round trip" `Quick
            test_value_adversarial_round_trip;
          Alcotest.test_case "of_string rejects ambiguity" `Quick
            test_value_of_string_rejects;
          Alcotest.test_case "adversarial database round trip" `Quick
            test_database_adversarial_round_trip;
          Alcotest.test_case "to_string refuses grammar collisions" `Quick
            test_database_to_string_guard;
          Alcotest.test_case "unterminated row quote" `Quick
            test_database_unterminated_row_quote;
        ] );
      ( "stats",
        [
          Alcotest.test_case "statistics" `Quick test_stats;
          Alcotest.test_case "column bounds errors" `Quick test_stats_bounds;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "concurrent cache forcing" `Quick
            test_concurrent_forcing;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_union_commutes;
            prop_diff_inter;
            prop_tuple_compare_total;
            prop_db_round_trip;
            prop_db_round_trip_hostile;
            prop_value_round_trip_hostile;
          ] );
    ]
