(* Tests for query relaxation (Section 7) and adjustment recommendations
   (Section 8): the relaxation machinery itself, the QRPP/ARPP decision
   procedures, their item variants, and the Theorem 7.2/8.1 reduction
   iffs. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Gen = Solvers.Gen
module Qbf = Solvers.Qbf
module Sat = Solvers.Sat
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let with_rng seed f = f (Random.State.make [| seed |])
let repeat n f = for seed = 1 to n do with_rng (seed * 91) f done

(* ---------- relaxation mechanics ---------- *)

let num_db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "R" [ "a"; "b" ])
        [ [ 1; 10 ]; [ 2; 20 ]; [ 5; 50 ] ];
    ]

let dist = Qlang.Dist.add "num" Qlang.Dist.numeric Qlang.Dist.empty

let base_inst value =
  Instance.make ~db:num_db
    ~select:(Qlang.Query.Fo (Qlang.Parser.parse_query "Q(a, b) := R(a, b) & a = 1"))
    ~cost:Rating.card_or_infinite ~value ~budget:1. ~dist ()

let site_a1 = { Relax.kind = Relax.Const_site (Value.Int 1); dfun = "num" }

let test_gap_and_keep () =
  let r = [ (site_a1, Relax.Keep) ] in
  Alcotest.(check (float 1e-9)) "gap of keep" 0. (Relax.gap r);
  Alcotest.(check (float 1e-9)) "gap of widen" 4.
    (Relax.gap [ (site_a1, Relax.Widen 4.) ]);
  (* Keep leaves the query unchanged. *)
  let q = Qlang.Parser.parse_query "Q(a, b) := R(a, b) & a = 1" in
  check "keep is identity" true
    (Qlang.Ast.equal_formula (Relax.apply q r).Qlang.Ast.body q.Qlang.Ast.body)

let test_apply_const_site () =
  let q = Qlang.Parser.parse_query "Q(a, b) := R(a, b) & a = 1" in
  let q' = Relax.apply q [ (site_a1, Relax.Widen 1.) ] in
  (* a = 1 widened to |a - 1| <= 1: rows a ∈ {1, 2} — but row (1,10) was the
     only one before. *)
  let before = Qlang.Fo_eval.eval_query ~dist num_db q in
  let after = Qlang.Fo_eval.eval_query ~dist num_db q' in
  check_int "before" 1 (Relation.cardinal before);
  check_int "after" 2 (Relation.cardinal after);
  check "monotone" true (Relation.subset before after)

let test_apply_var_site () =
  (* Join breaking: Q(a) := R(a, x) & R(x, b) — x repeated.  With the
     discrete distance at level 1 the equijoin becomes free. *)
  let db =
    Database.of_relations
      [
        Relation.of_int_rows (Schema.make "R" [ "a"; "b" ])
          [ [ 1; 2 ]; [ 3; 4 ] ];
      ]
  in
  let dist = Qlang.Dist.add "disc" Qlang.Dist.discrete Qlang.Dist.empty in
  let q = Qlang.Parser.parse_query "Q(a, b) := exists x. R(a, x) & R(x, b)" in
  let site = { Relax.kind = Relax.Var_site "x"; dfun = "disc" } in
  let before = Qlang.Fo_eval.eval_query ~dist db q in
  check_int "no join partner" 0 (Relation.cardinal before);
  let q' = Relax.apply q [ (site, Relax.Widen 1.) ] in
  let after = Qlang.Fo_eval.eval_query ~dist db q' in
  (* the join became a cross product: 2 × 2 (a, b) pairs *)
  check_int "cartesian after break" 4 (Relation.cardinal after)

let test_apply_requires_prenex () =
  (* Constant sites work on any FO body (Theorem 7.2's FO row needs this)... *)
  let q = Qlang.Parser.parse_query "Q(a) := R(a, 1) & not (exists x. R(a, x) & x > 1)" in
  let q' = Relax.apply q [ (site_a1, Relax.Widen 1.) ] in
  check "constant relaxed under negation" true
    (not (Qlang.Ast.equal_formula q'.Qlang.Ast.body q.Qlang.Ast.body));
  (* ...but join-breaking still requires a prenex-existential body. *)
  let qv = Qlang.Parser.parse_query "Q(a) := not (exists x. R(a, x) & R(x, a))" in
  let site = { Relax.kind = Relax.Var_site "x"; dfun = "num" } in
  try
    ignore (Relax.apply qv [ (site, Relax.Widen 1.) ]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_candidate_levels () =
  let inst = base_inst Rating.count in
  let levels = Relax.candidate_levels inst site_a1 ~max_gap:10. in
  (* |1 - a| for adom values {1,2,5,10,20,50}: 0(dropped),1,4,9,19,49 capped at 10 *)
  check "levels" true (levels = [ 1.; 4.; 9. ])

let test_relaxations_sorted () =
  let inst = base_inst Rating.count in
  let rs = Relax.relaxations inst ~sites:[ site_a1 ] ~max_gap:5. in
  check_int "keep + 2 widenings" 3 (List.length rs);
  let gaps = List.map Relax.gap rs in
  check "sorted by gap" true (gaps = List.sort compare gaps);
  check "first is all-keep" true (Relax.gap (List.hd rs) = 0.)

let test_qrpp_finds_minimum_gap () =
  (* Need a package with b >= 20: requires widening a by >= 1; minimal is 1. *)
  let value = Rating.max_col 1 in
  let inst = base_inst value in
  match Relax.qrpp inst ~sites:[ site_a1 ] ~k:1 ~bound:20. ~max_gap:10. with
  | None -> Alcotest.fail "expected a relaxation"
  | Some (r, _) -> Alcotest.(check (float 1e-9)) "minimal gap" 1. (Relax.gap r)

let test_qrpp_respects_max_gap () =
  (* b >= 50 needs widening by 4; with max_gap 2 it must fail. *)
  let value = Rating.max_col 1 in
  let inst = base_inst value in
  check "infeasible gap" true
    (Relax.qrpp inst ~sites:[ site_a1 ] ~k:1 ~bound:50. ~max_gap:2. = None);
  match Relax.qrpp inst ~sites:[ site_a1 ] ~k:1 ~bound:50. ~max_gap:4. with
  | Some (r, _) -> Alcotest.(check (float 1e-9)) "gap 4" 4. (Relax.gap r)
  | None -> Alcotest.fail "expected a relaxation at gap 4"

let test_qrpp_trivial_when_satisfied () =
  (* If the original query suffices, the all-Keep relaxation is returned. *)
  let inst = base_inst Rating.count in
  match Relax.qrpp inst ~sites:[ site_a1 ] ~k:1 ~bound:1. ~max_gap:10. with
  | Some (r, _) -> Alcotest.(check (float 1e-9)) "gap 0" 0. (Relax.gap r)
  | None -> Alcotest.fail "expected the trivial relaxation"

(* Relaxation is sound: widening can only add answers (w = c is always at
   distance 0 ≤ d, so QΓ(D) ⊇ Q(D)). *)
let prop_relaxation_grows_answers =
  QCheck.Test.make ~name:"relaxed queries only gain answers" ~count:50
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let db =
        Database.of_relations
          [
            Relation.of_list (Schema.make "R" [ "a"; "b" ])
              (List.init 8 (fun _ ->
                   Tuple.of_ints
                     [ Random.State.int rng 6; Random.State.int rng 6 ]));
          ]
      in
      let c = Random.State.int rng 6 in
      let q =
        Qlang.Parser.parse_query
          (Printf.sprintf "Q(a, b) := R(a, b) & a = %d" c)
      in
      let site = { Relax.kind = Relax.Const_site (Value.Int c); dfun = "num" } in
      let d = float_of_int (Random.State.int rng 4) in
      let q' = Relax.apply q [ (site, Relax.Widen d) ] in
      let before = Qlang.Fo_eval.eval_query ~dist db q in
      let after = Qlang.Fo_eval.eval_query ~dist db q' in
      Relation.subset before after)

(* ---------- Theorem 7.2 reductions ---------- *)

let test_qrpp_sigma2 () =
  repeat 6 (fun rng ->
      let phi = Gen.ea_dnf rng ~m:2 ~n:2 ~nterms:3 in
      let inst, sites, b, g = Reductions.Sigma2.qrpp_instance phi in
      check "Theorem 7.2 Σ₂ᵖ iff" (Qbf.Ea_dnf.solve phi)
        (Option.is_some (Relax.qrpp inst ~sites ~k:1 ~bound:b ~max_gap:g)))

let test_qrpp_np_data () =
  repeat 4 (fun rng ->
      let cnf = Gen.cnf3 rng ~nvars:4 ~nclauses:2 in
      let inst, sites, b, g = Reductions.Relax_np.instance cnf in
      check "Theorem 7.2 NP iff" (Sat.satisfiable cnf)
        (Option.is_some (Relax.qrpp inst ~sites ~k:1 ~bound:b ~max_gap:g)))

let test_qrpp_membership_fo () =
  repeat 6 (fun rng ->
      let qbf = Gen.qbf rng ~nvars:4 ~nclauses:4 in
      let inst, sites, b, g =
        Reductions.Relax_adjust_mem.qrpp_instance Reductions.Relax_adjust_mem.In_fo qbf
      in
      check "Theorem 7.2 FO/PSPACE iff" (Qbf.solve qbf)
        (Option.is_some (Relax.qrpp inst ~sites ~k:1 ~bound:b ~max_gap:g)))

let test_qrpp_membership_datalognr () =
  repeat 6 (fun rng ->
      let qbf = Gen.qbf rng ~nvars:4 ~nclauses:4 in
      let inst, sites, b, g =
        Reductions.Relax_adjust_mem.qrpp_instance
          Reductions.Relax_adjust_mem.In_datalognr qbf
      in
      check "Theorem 7.2 DATALOGnr iff" (Qbf.solve qbf)
        (Option.is_some (Relax.qrpp inst ~sites ~k:1 ~bound:b ~max_gap:g)))

let test_arpp_membership () =
  List.iter
    (fun lang ->
      repeat 4 (fun rng ->
          let qbf = Gen.qbf rng ~nvars:4 ~nclauses:4 in
          let inst, extra, b, k' =
            Reductions.Relax_adjust_mem.arpp_instance lang qbf
          in
          check "Theorem 8.1 membership iff" (Qbf.solve qbf)
            (Option.is_some
               (Adjust.arpp inst ~extra ~k:1 ~bound:b ~max_changes:k'))))
    [ Reductions.Relax_adjust_mem.In_fo; Reductions.Relax_adjust_mem.In_datalognr ]

(* QRPP for items (Corollary 7.3). *)
let test_qrpp_items () =
  let utility =
    {
      Items.u_name = "b";
      u_eval = (fun t -> float_of_int (Value.int_exn (Tuple.get t 1)));
    }
  in
  let it =
    Items.make ~db:num_db
      ~select:(Qlang.Query.Fo (Qlang.Parser.parse_query "Q(a, b) := R(a, b) & a = 1"))
      ~utility ~dist ()
  in
  (match Relax.qrpp_items it ~sites:[ site_a1 ] ~k:1 ~bound:20. ~max_gap:10. with
  | Some (r, _) -> Alcotest.(check (float 1e-9)) "items minimal gap" 1. (Relax.gap r)
  | None -> Alcotest.fail "expected a relaxation");
  check "items infeasible" true
    (Relax.qrpp_items it ~sites:[ site_a1 ] ~k:2 ~bound:50. ~max_gap:10. = None)

(* ---------- adjustments ---------- *)

let adj_db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "R" [ "id"; "w" ]) [ [ 1; 3 ]; [ 2; 4 ] ];
    ]

let adj_extra =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "R" [ "id"; "w" ]) [ [ 3; 9 ]; [ 4; 7 ] ];
    ]

let adj_inst =
  Instance.make ~db:adj_db ~select:(Qlang.Query.Identity "R")
    ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget:1. ()

let test_delta_apply () =
  let delta =
    [ Adjust.Del ("R", Tuple.of_ints [ 1; 3 ]); Adjust.Ins ("R", Tuple.of_ints [ 3; 9 ]) ]
  in
  let db' = Adjust.apply adj_db delta in
  check_int "size preserved" 2 (Database.size db');
  check "deleted" false (Relation.mem (Tuple.of_ints [ 1; 3 ]) (Database.find db' "R"));
  check "inserted" true (Relation.mem (Tuple.of_ints [ 3; 9 ]) (Database.find db' "R"));
  check_int "delta size" 2 (Adjust.size delta)

let test_possible_changes () =
  let cs = Adjust.possible_changes adj_db ~extra:adj_extra in
  (* 2 deletions + 2 insertions *)
  check_int "changes" 4 (List.length cs);
  (* inserting an existing tuple is not offered *)
  let extra_dup =
    Database.of_relations
      [ Relation.of_int_rows (Schema.make "R" [ "id"; "w" ]) [ [ 1; 3 ] ] ]
  in
  check_int "no duplicate insert" 2
    (List.length (Adjust.possible_changes adj_db ~extra:extra_dup));
  let bad =
    Database.of_relations
      [ Relation.of_int_rows (Schema.make "S" [ "x" ]) [ [ 1 ] ] ]
  in
  try
    ignore (Adjust.possible_changes adj_db ~extra:bad);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_arpp_basics () =
  (* Already satisfiable: the empty adjustment is returned. *)
  (match Adjust.arpp adj_inst ~extra:adj_extra ~k:1 ~bound:4. ~max_changes:2 with
  | Some [] -> ()
  | _ -> Alcotest.fail "expected the empty adjustment");
  (* Needs the 9-weight insert. *)
  (match Adjust.arpp adj_inst ~extra:adj_extra ~k:1 ~bound:9. ~max_changes:1 with
  | Some [ Adjust.Ins ("R", t) ] ->
      check "inserted the 9" true (Tuple.equal t (Tuple.of_ints [ 3; 9 ]))
  | _ -> Alcotest.fail "expected one insertion");
  (* Impossible even with 2 changes: no single item reaches 20. *)
  check "impossible" true
    (Adjust.arpp adj_inst ~extra:adj_extra ~k:1 ~bound:20. ~max_changes:2 = None);
  (* k = 3 singletons >= 4 needs both inserts. *)
  match Adjust.arpp adj_inst ~extra:adj_extra ~k:3 ~bound:4. ~max_changes:2 with
  | Some delta -> check_int "two changes" 2 (Adjust.size delta)
  | None -> Alcotest.fail "expected a 2-change adjustment"

let test_arpp_items () =
  let utility =
    {
      Items.u_name = "w";
      u_eval = (fun t -> float_of_int (Value.int_exn (Tuple.get t 1)));
    }
  in
  let it = Items.make ~db:adj_db ~select:(Qlang.Query.Identity "R") ~utility () in
  (match Adjust.arpp_items it ~extra:adj_extra ~k:2 ~bound:7. ~max_changes:2 with
  | Some delta -> check_int "two inserts" 2 (Adjust.size delta)
  | None -> Alcotest.fail "expected an adjustment");
  check "items impossible" true
    (Adjust.arpp_items it ~extra:adj_extra ~k:5 ~bound:1. ~max_changes:1 = None)

(* ---------- Theorem 8.1 reductions ---------- *)

let test_arpp_sigma2 () =
  repeat 5 (fun rng ->
      let phi = Gen.ea_dnf rng ~m:2 ~n:2 ~nterms:3 in
      let inst, extra, b, k' = Reductions.Sigma2.arpp_instance phi in
      check "Theorem 8.1 Σ₂ᵖ iff" (Qbf.Ea_dnf.solve phi)
        (Option.is_some (Adjust.arpp inst ~extra ~k:1 ~bound:b ~max_changes:k')))

let test_arpp_np_data () =
  repeat 3 (fun rng ->
      let cnf = Gen.cnf3 rng ~nvars:3 ~nclauses:2 in
      let inst, extra, k, b, k' = Reductions.Adjust_np.instance cnf in
      check "Theorem 8.1 NP iff" (Sat.satisfiable cnf)
        (Option.is_some (Adjust.arpp inst ~extra ~k ~bound:b ~max_changes:k')))

let () =
  Alcotest.run "relax-adjust"
    [
      ( "relaxation",
        [
          Alcotest.test_case "gap and Keep" `Quick test_gap_and_keep;
          Alcotest.test_case "constant sites" `Quick test_apply_const_site;
          Alcotest.test_case "join breaking" `Quick test_apply_var_site;
          Alcotest.test_case "prenex requirement" `Quick test_apply_requires_prenex;
          Alcotest.test_case "candidate levels (D-equivalence)" `Quick
            test_candidate_levels;
          Alcotest.test_case "enumeration order" `Quick test_relaxations_sorted;
          QCheck_alcotest.to_alcotest prop_relaxation_grows_answers;
        ] );
      ( "qrpp",
        [
          Alcotest.test_case "minimum gap" `Quick test_qrpp_finds_minimum_gap;
          Alcotest.test_case "gap budget" `Quick test_qrpp_respects_max_gap;
          Alcotest.test_case "trivial relaxation" `Quick test_qrpp_trivial_when_satisfied;
          Alcotest.test_case "Theorem 7.2 (Σ₂ᵖ)" `Quick test_qrpp_sigma2;
          Alcotest.test_case "Theorem 7.2 (NP data)" `Quick test_qrpp_np_data;
          Alcotest.test_case "Theorem 7.2 (FO membership)" `Quick
            test_qrpp_membership_fo;
          Alcotest.test_case "Theorem 7.2 (DATALOGnr membership)" `Quick
            test_qrpp_membership_datalognr;
          Alcotest.test_case "Corollary 7.3 (items)" `Quick test_qrpp_items;
        ] );
      ( "adjustment",
        [
          Alcotest.test_case "delta application" `Quick test_delta_apply;
          Alcotest.test_case "possible changes" `Quick test_possible_changes;
          Alcotest.test_case "ARPP basics" `Quick test_arpp_basics;
          Alcotest.test_case "ARPP for items" `Quick test_arpp_items;
          Alcotest.test_case "Theorem 8.1 (Σ₂ᵖ)" `Quick test_arpp_sigma2;
          Alcotest.test_case "Theorem 8.1 (NP data)" `Slow test_arpp_np_data;
          Alcotest.test_case "Theorem 8.1 (membership, FO + DATALOGnr)" `Quick
            test_arpp_membership;
        ] );
    ]
