(* Tests for the robustness layer: budgets (fuel, deadlines, cancellation
   tokens, subtokens), the [Exact]/[Partial] outcome discipline of every
   budgeted entry point, advisor-driven degradation, pool cancellation and
   recovery, and deterministic fault injection at every [Robust.Fault]
   site — including the unpoisoned-memo property (fault, then retry on the
   same instance, equals a fresh run).

   When [PKG_FAULT=<site>:<nth>[:exn|exhaust]] is set, only that site's
   scenario runs — the CI fault matrix executes this binary once per
   site. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Budget = Robust.Budget
module Fault = Robust.Fault
module Cnf = Solvers.Cnf
module Sat = Solvers.Sat
module Qbf = Solvers.Qbf
module Count = Solvers.Count
module Maxsat = Solvers.Maxsat
module Gen = Solvers.Gen
module Pool = Parallel.Pool
open Core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pkg ints_rows = Package.of_tuples (List.map Tuple.of_ints ints_rows)

let topk_equal a b =
  match (a, b) with
  | None, None -> true
  | Some xs, Some ys ->
      List.length xs = List.length ys && List.for_all2 Package.equal xs ys
  | _ -> false

(* R(id, score); packages maximize total score under cost = |N| ≤ 2. *)
let small_db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "R" [ "id"; "score" ])
        [ [ 1; 5 ]; [ 2; 3 ]; [ 3; 8 ]; [ 4; 1 ] ];
    ]

let small_inst ?compat ?size_bound ?(budget = 2.) () =
  Instance.make ~db:small_db ~select:(Qlang.Query.Identity "R") ?compat
    ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget ?size_bound ()

(* ---------- budget basics ---------- *)

let test_fuel () =
  let b = Budget.make ~fuel:3 () in
  Budget.with_budget b (fun () ->
      Budget.check ();
      Budget.check ();
      Budget.check ();
      (try
         Budget.check ();
         Alcotest.fail "fourth check must exhaust"
       with Budget.Exhausted Budget.Fuel -> ());
      (* The trip is latched: re-raises without consuming more ticks. *)
      try
        Budget.check ();
        Alcotest.fail "latch must re-raise"
      with Budget.Exhausted Budget.Fuel -> ());
  check_int "ticks stop at the trip" 4 (Budget.ticks b);
  (* No installed budget: check is a no-op. *)
  Budget.check ()

let test_deadline () =
  let b = Budget.make ~deadline:(-1.) () in
  try
    Budget.with_budget b Budget.check;
    Alcotest.fail "expired deadline must trip"
  with Budget.Exhausted Budget.Deadline -> ()

let test_cancel_and_subtoken () =
  let b = Budget.make () in
  let sub = Budget.subtoken b in
  Budget.cancel sub;
  check "cancelling the child leaves the parent alone" false
    (Budget.is_cancelled b);
  check "child is cancelled" true (Budget.is_cancelled sub);
  Budget.with_budget b Budget.check;
  (* fine *)
  let b2 = Budget.make () in
  let sub2 = Budget.subtoken b2 in
  Budget.cancel b2;
  check "cancelling the parent cancels the child" true
    (Budget.is_cancelled sub2);
  (try
     Budget.with_budget sub2 Budget.check;
     Alcotest.fail "cancelled token must trip"
   with Budget.Exhausted Budget.Cancelled -> ());
  (* Fuel accounting is global across subtokens. *)
  let p = Budget.make ~fuel:2 () in
  let s = Budget.subtoken p in
  Budget.with_budget p Budget.check;
  Budget.with_budget s Budget.check;
  (try
     Budget.with_budget s Budget.check;
     Alcotest.fail "shared fuel must exhaust"
   with Budget.Exhausted Budget.Fuel -> ());
  check_int "shared ticks" 3 (Budget.ticks p)

let test_run_outcomes () =
  (match Budget.run ~partial:(fun _ -> None) (fun () -> 42) with
  | Budget.Exact 42 -> ()
  | _ -> Alcotest.fail "expected Exact 42");
  let b = Budget.make ~fuel:2 () in
  match
    Budget.run ~budget:b
      ~partial:(fun r -> Some r)
      (fun () ->
        for _ = 1 to 10 do
          Budget.check ()
        done;
        0)
  with
  | Budget.Partial
      { best_so_far = Some Budget.Fuel; reason = Budget.Fuel; work_done } ->
      check_int "work_done is the tick count" 3 work_done
  | _ -> Alcotest.fail "expected Partial with reason Fuel"

let test_reason_strings () =
  Alcotest.(check string) "fuel" "fuel" (Budget.reason_to_string Budget.Fuel);
  Alcotest.(check string) "fault" "fault:x"
    (Budget.reason_to_string (Budget.Fault "x"))

let test_fault_parse () =
  check "site:nth" true (Fault.parse "sat.conflict:3" = Some ("sat.conflict", 3, Fault.Exn));
  check "explicit exn" true (Fault.parse "a.b:1:exn" = Some ("a.b", 1, Fault.Exn));
  check "exhaust" true (Fault.parse "a.b:2:exhaust" = Some ("a.b", 2, Fault.Exhaust));
  check "zero nth rejected" true (Fault.parse "a.b:0" = None);
  check "bad kind rejected" true (Fault.parse "a.b:1:boom" = None);
  check "garbage rejected" true (Fault.parse "nonsense" = None)

(* ---------- budgeted entry points: soundness of Partial ---------- *)

let test_frp_budgeted_sound () =
  let inst = small_inst () in
  let exact = Frp.enumerate inst ~k:1 in
  let value = Rating.eval inst.Instance.value in
  let opt =
    match exact with
    | Some [ p ] -> value p
    | _ -> Alcotest.fail "small instance has a top-1"
  in
  for fuel = 1 to 40 do
    match Frp.enumerate_budgeted ~budget:(Budget.make ~fuel ()) inst ~k:1 with
    | Budget.Exact r -> check "exact run matches enumerate" true (topk_equal r exact)
    | Budget.Partial { best_so_far = Some p; _ } ->
        check "partial package is valid" true (Validity.valid inst p);
        check "partial rating ≤ optimum" true (value p <= opt)
    | Budget.Partial { best_so_far = None; _ } -> ()
  done;
  (* An unlimited explicit budget forces the anytime (sequential) path;
     the answer must still match the default path exactly. *)
  match Frp.enumerate_budgeted ~budget:(Budget.make ()) inst ~k:2 with
  | Budget.Exact r -> check "anytime path agrees" true (topk_equal r (Frp.enumerate inst ~k:2))
  | Budget.Partial _ -> Alcotest.fail "unlimited budget must be Exact"

let test_cpp_budgeted_lower_bound () =
  let inst = small_inst () in
  let exact = Cpp.count inst ~bound:4. in
  (match Cpp.count_budgeted ~budget:(Budget.make ()) inst ~bound:4. with
  | Budget.Exact n -> check_int "unlimited budget is exact" exact n
  | Budget.Partial _ -> Alcotest.fail "unlimited budget must be Exact");
  for fuel = 1 to 30 do
    match Cpp.count_budgeted ~budget:(Budget.make ~fuel ()) inst ~bound:4. with
    | Budget.Exact n -> check_int "exact count" exact n
    | Budget.Partial { best_so_far = Some n; _ } ->
        check "verified lower bound" true (0 <= n && n <= exact)
    | Budget.Partial { best_so_far = None; _ } ->
        Alcotest.fail "CPP partial always carries the count so far"
  done

let test_mbp_budgeted_unknown () =
  let inst = small_inst () in
  match Mbp.max_bound_budgeted ~budget:(Budget.make ~fuel:1 ()) inst ~k:1 with
  | Budget.Partial { best_so_far = None; reason = Budget.Fuel; _ } -> ()
  | Budget.Partial _ -> Alcotest.fail "MBP partial must be Unknown fuel"
  | Budget.Exact _ -> Alcotest.fail "fuel 1 must interrupt MBP"

let test_relax_adjust_budgeted_unknown () =
  let dist = Qlang.Dist.add "num" Qlang.Dist.numeric Qlang.Dist.empty in
  let db =
    Database.of_relations
      [
        Relation.of_int_rows (Schema.make "R" [ "a"; "b" ])
          [ [ 1; 10 ]; [ 2; 20 ]; [ 5; 50 ] ];
      ]
  in
  let inst =
    Instance.make ~db
      ~select:(Qlang.Query.Fo (Qlang.Parser.parse_query "Q(a, b) := R(a, b) & a = 1"))
      ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
      ~budget:1. ~dist ()
  in
  let site = { Relax.kind = Relax.Const_site (Value.Int 1); dfun = "num" } in
  (match
     Relax.qrpp_budgeted ~budget:(Budget.make ~fuel:1 ()) inst ~sites:[ site ]
       ~k:1 ~bound:20. ~max_gap:10.
   with
  | Budget.Partial { best_so_far = None; _ } -> ()
  | Budget.Partial { best_so_far = Some _; _ } ->
      Alcotest.fail "QRPP partial must be Unknown"
  | Budget.Exact _ -> Alcotest.fail "fuel 1 must interrupt QRPP");
  let adj_inst = small_inst ~budget:1. () in
  let extra =
    Database.of_relations
      [ Relation.of_int_rows (Schema.make "R" [ "id"; "score" ]) [ [ 9; 9 ] ] ]
  in
  match
    Adjust.arpp_budgeted ~budget:(Budget.make ~fuel:1 ()) adj_inst ~extra ~k:1
      ~bound:4. ~max_changes:1
  with
  | Budget.Partial { best_so_far = None; _ } -> ()
  | Budget.Partial { best_so_far = Some _; _ } ->
      Alcotest.fail "ARPP partial must be Unknown"
  | Budget.Exact _ -> Alcotest.fail "fuel 1 must interrupt ARPP"

(* ---------- non-binding budget: answers and telemetry unchanged ---------- *)

(* Counters are no-ops unless tracing is on; telemetry-asserting tests
   force-enable it and restore the ambient state afterwards. *)
let with_tracing f =
  let was = Observe.enabled () in
  Observe.set_enabled true;
  Observe.reset ();
  Fun.protect
    ~finally:(fun () ->
      Observe.set_enabled was;
      Observe.reset ())
    f

let counters snap =
  List.filter_map
    (function
      | name, Observe.Count n -> Some (name, n)
      | name, Observe.Span { entries; _ } -> Some (name, entries))
    snap

let test_nonbinding_budget_equivalence () =
  with_tracing @@ fun () ->
  let inst = small_inst () in
  (* Warm Q(D) so both runs hit the instance memo identically. *)
  ignore (Instance.candidates inst);
  Observe.reset ();
  let plain = Frp.enumerate inst ~k:2 in
  let s_plain = counters (Observe.snapshot ()) in
  Observe.reset ();
  let budgeted =
    Frp.enumerate_budgeted ~budget:(Budget.make ~fuel:10_000_000 ()) inst ~k:2
  in
  let s_budgeted = counters (Observe.snapshot ()) in
  (match budgeted with
  | Budget.Exact r -> check "answers unchanged" true (topk_equal r plain)
  | Budget.Partial _ -> Alcotest.fail "non-binding budget must be Exact");
  check "telemetry totals unchanged" true (s_plain = s_budgeted)

(* ---------- advisor-driven degradation ---------- *)

let counter_of name snap =
  match List.assoc_opt name snap with Some n -> n | None -> 0

let test_degrade_const_bound () =
  with_tracing @@ fun () ->
  let inst = small_inst ~size_bound:(Size_bound.Const 2) () in
  check "routes to the constant-bound path" true
    (Dispatch.route inst = Dispatch.Const_bound_path 2);
  let exact = Dispatch.topk inst ~k:2 in
  (match Dispatch.topk_b ~budget:(Budget.make ~fuel:1 ()) inst ~k:2 with
  | Budget.Exact r -> check "degraded answer is exact" true (topk_equal r exact)
  | Budget.Partial _ ->
      Alcotest.fail "tractable route must degrade to Exact");
  check "degradation counted" true
    (counter_of "robust.degraded" (counters (Observe.snapshot ())) > 0)

let test_degrade_items () =
  with_tracing @@ fun () ->
  (* A joining CQ selection so candidate generation passes budget checks;
     Const 1 and no Qc make the analyzer certify the items special case. *)
  let inst =
    Instance.make ~db:small_db
      ~select:
        (Qlang.Query.Fo
           (Qlang.Parser.parse_query "Q(i, s) := R(i, s) & R(i, s)"))
      ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
      ~budget:2. ~size_bound:(Size_bound.Const 1) ()
  in
  check "routes to the items path" true (Dispatch.route inst = Dispatch.Items_path);
  (match Dispatch.topk_b ~budget:(Budget.make ~deadline:(-1.) ()) inst ~k:1 with
  | Budget.Exact (Some [ p ]) ->
      check "degraded top-1 is the best singleton" true
        (Package.equal p (pkg [ [ 3; 8 ] ]))
  | _ -> Alcotest.fail "items route must degrade to Exact");
  check "degradation counted" true
    (counter_of "robust.degraded" (counters (Observe.snapshot ())) > 0)

let test_generic_stays_partial () =
  let inst = small_inst () in
  (* linear size bound → Generic_path: exhaustion surfaces as Partial. *)
  match Dispatch.topk_b ~budget:(Budget.make ~fuel:1 ()) inst ~k:1 with
  | Budget.Partial { reason = Budget.Fuel; _ } -> ()
  | _ -> Alcotest.fail "generic route must surface Partial"

(* ---------- SAT conflict cap (sat.conflicts telemetry events) ---------- *)

(* Complete falsification over two variables: DPLL must conflict in both
   branches before concluding UNSAT. *)
let forced_conflicts =
  Cnf.make ~nvars:2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ]

let test_sat_conflict_cap () =
  (match Sat.solve_budgeted ~conflict_limit:1 forced_conflicts with
  | Budget.Partial { best_so_far = None; reason = Budget.Fuel; _ } -> ()
  | Budget.Partial _ ->
      Alcotest.fail "an interrupted DPLL run reports Partial fuel, no model"
  | Budget.Exact _ -> Alcotest.fail "cap 1 must interrupt the refutation");
  (match Sat.solve_budgeted ~conflict_limit:1000 forced_conflicts with
  | Budget.Exact None -> ()
  | _ -> Alcotest.fail "generous cap must refute exactly");
  let satf = Cnf.make ~nvars:3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  match Sat.solve_budgeted ~conflict_limit:1000 satf with
  | Budget.Exact (Some a) -> check "model satisfies" true (Cnf.holds satf a)
  | _ -> Alcotest.fail "expected a model"

(* ---------- pool cancellation and recovery ---------- *)

let test_pool_cancellation () =
  let started = Atomic.make false in
  let saw_cancel = Atomic.make false in
  let task i =
    if i = 0 then begin
      Atomic.set started true;
      try
        (* Bounded spin: terminates (slowly) even if cancellation is
           broken, so the assertion below fails instead of hanging. *)
        for _ = 1 to 50_000_000 do
          Budget.check ()
        done;
        0
      with Budget.Exhausted Budget.Cancelled as e ->
        Atomic.set saw_cancel true;
        raise e
    end
    else begin
      while not (Atomic.get started) do
        Domain.cpu_relax ()
      done;
      failwith "boom"
    end
  in
  (try
     ignore (Pool.map ~domains:2 2 task);
     Alcotest.fail "expected the task failure to re-raise"
   with Failure msg ->
     Alcotest.(check string) "original failure wins over collateral" "boom" msg);
  check "sibling aborted at its next check" true (Atomic.get saw_cancel);
  check "pool drains clean and keeps working" true
    (Pool.map ~domains:2 4 succ = [ 1; 2; 3; 4 ])

(* ---------- fault injection, one scenario per site ---------- *)

(* Arm [site:1:exn], run [f], expect [Injected site]; always disarm. *)
let expect_injected site f =
  Fault.arm ~site ~nth:1 ~kind:Fault.Exn;
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  match f () with
  | _ -> Alcotest.failf "fault %s did not fire" site
  | exception Fault.Injected s -> Alcotest.(check string) "site" site s

let test_fault_pool_task () =
  expect_injected "pool.task" (fun () -> Pool.map ~domains:2 6 succ);
  check "pool recovers after an injected task failure" true
    (Pool.map ~domains:2 6 succ = [ 1; 2; 3; 4; 5; 6 ]);
  Fault.arm ~site:"pool.task" ~nth:1 ~kind:Fault.Exhaust;
  (match
     Budget.run ~partial:(fun _ -> None) (fun () -> Pool.map ~domains:2 6 succ)
   with
  | Budget.Partial { reason = Budget.Fault "pool.task"; _ } -> ()
  | _ -> Alcotest.fail "expected Partial fault:pool.task");
  Fault.disarm ();
  check "pool recovers after an injected exhaustion" true
    (Pool.map ~domains:2 6 succ = [ 1; 2; 3; 4; 5; 6 ])

let test_fault_sat_conflict () =
  expect_injected "sat.conflict" (fun () -> Sat.solve forced_conflicts);
  check "solver still refutes after the fault" false
    (Sat.satisfiable forced_conflicts);
  Fault.arm ~site:"sat.conflict" ~nth:1 ~kind:Fault.Exhaust;
  (match Sat.solve_budgeted forced_conflicts with
  | Budget.Partial
      { best_so_far = None; reason = Budget.Fault "sat.conflict"; _ } ->
      ()
  | _ -> Alcotest.fail "expected Partial fault:sat.conflict");
  Fault.disarm ()

let test_fault_qbf_node () =
  let q = Gen.qbf (Random.State.make [| 7 |]) ~nvars:4 ~nclauses:6 in
  let expected = Qbf.solve q in
  expect_injected "qbf.node" (fun () -> Qbf.solve q);
  check "retry equals fresh run" true (Qbf.solve q = expected)

let test_fault_count_node () =
  let f = Cnf.make ~nvars:4 [ [ 1; 2 ]; [ -1; 3 ]; [ 2; -4 ] ] in
  expect_injected "count.node" (fun () -> Count.count_models f);
  check_int "retry equals brute force" (Count.brute_count f)
    (Count.count_models f)

let test_fault_maxsat_node () =
  let mi =
    Maxsat.make (Cnf.make ~nvars:3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ]) [ 3; 2; 1 ]
  in
  expect_injected "maxsat.node" (fun () -> Maxsat.solve mi);
  let w, a = Maxsat.solve mi in
  check_int "retry weight is achieved" w (Maxsat.weight_of mi a);
  check_int "retry equals brute force" (Maxsat.brute_force mi) w;
  Fault.arm ~site:"maxsat.node" ~nth:6 ~kind:Fault.Exhaust;
  (match Maxsat.solve_budgeted mi with
  | Budget.Partial { best_so_far; reason = Budget.Fault "maxsat.node"; _ } -> (
      match best_so_far with
      | Some (pw, pa) ->
          check_int "partial weight is achieved" pw (Maxsat.weight_of mi pa);
          check "partial weight ≤ optimum" true (pw <= w)
      | None -> ())
  | _ -> Alcotest.fail "expected Partial fault:maxsat.node");
  Fault.disarm ()

(* The kernel-wide site: every solver built on {!Solvers.Bnb} probes
   ["bnb.node"] at each node tick, so one armed site reaches MaxSAT and
   the package oracle alike. *)
let test_fault_bnb_node () =
  let mi =
    Maxsat.make (Cnf.make ~nvars:3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ]) [ 3; 2; 1 ]
  in
  expect_injected "bnb.node" (fun () -> Maxsat.solve mi);
  let w, a = Maxsat.solve mi in
  check_int "retry weight is achieved" w (Maxsat.weight_of mi a);
  expect_injected "bnb.node" (fun () ->
      Exist_pack.all_valid (Exist_pack.ctx (small_inst ())));
  let retry = Exist_pack.all_valid (Exist_pack.ctx (small_inst ())) in
  let fresh = Exist_pack.all_valid (Exist_pack.ctx (small_inst ())) in
  check "oracle fault-then-retry equals a fresh run" true
    (List.length retry = List.length fresh
    && List.for_all2 Package.equal retry fresh);
  Fault.arm ~site:"bnb.node" ~nth:6 ~kind:Fault.Exhaust;
  (match Maxsat.solve_budgeted mi with
  | Budget.Partial { best_so_far; reason = Budget.Fault "bnb.node"; _ } -> (
      match best_so_far with
      | Some (pw, pa) ->
          check_int "partial weight is achieved" pw (Maxsat.weight_of mi pa);
          check "partial weight ≤ optimum" true (pw <= w)
      | None -> ())
  | _ -> Alcotest.fail "expected Partial fault:bnb.node");
  Fault.disarm ()

let test_fault_memo_candidates () =
  let inst = small_inst () in
  expect_injected "memo.candidates" (fun () -> Instance.candidates inst);
  check "memo unpoisoned: retry equals an uncached run" true
    (Relation.equal (Instance.candidates inst) (Instance.candidates_uncached inst));
  (* Exhaust kind through an explicit run wrapper. *)
  let inst2 = small_inst () in
  Fault.arm ~site:"memo.candidates" ~nth:1 ~kind:Fault.Exhaust;
  (match
     Budget.run ~partial:(fun _ -> None) (fun () -> Instance.candidates inst2)
   with
  | Budget.Partial { reason = Budget.Fault "memo.candidates"; _ } -> ()
  | _ -> Alcotest.fail "expected Partial fault:memo.candidates");
  Fault.disarm ();
  check "memo unpoisoned after exhaustion" true
    (Relation.equal (Instance.candidates inst2)
       (Instance.candidates_uncached inst2))

let test_fault_memo_compat () =
  let qc =
    Qlang.Parser.parse_query
      "Qc() := exists a, s, b, s2. RQ(a, s) & RQ(b, s2) & s = s2 & a != b"
  in
  let inst = small_inst ~compat:(Instance.Compat_query (Qlang.Query.Fo qc)) () in
  let p = pkg [ [ 1; 5 ]; [ 3; 8 ] ] in
  expect_injected "memo.compat" (fun () -> Validity.compatible inst p);
  check "verdict memo unpoisoned: retry computes the true verdict" true
    (Validity.compatible inst p)

let graph_db =
  Database.of_relations
    [
      Relation.of_int_rows (Schema.make "E" [ "s"; "d" ]) [ [ 1; 2 ]; [ 2; 3 ] ];
    ]

let test_fault_datalog_round () =
  let tc =
    Qlang.Parser.parse_program
      "T(x,y) :- E(x,y). T(x,z) :- E(x,y), T(y,z). ?- T."
  in
  expect_injected "datalog.round" (fun () -> Qlang.Datalog.eval graph_db tc);
  check_int "retry reaches the fixpoint" 3
    (Relation.cardinal (Qlang.Datalog.eval graph_db tc));
  Fault.arm ~site:"datalog.round" ~nth:1 ~kind:Fault.Exhaust;
  (match
     Budget.run ~partial:(fun _ -> None) (fun () -> Qlang.Datalog.eval graph_db tc)
   with
  | Budget.Partial { reason = Budget.Fault "datalog.round"; _ } -> ()
  | _ -> Alcotest.fail "expected Partial fault:datalog.round");
  Fault.disarm ()

let test_fault_cq_join () =
  let q = Qlang.Parser.parse_query "Q(x, z) := exists y. E(x, y) & E(y, z)" in
  expect_injected "cq.join" (fun () -> Qlang.Cq_eval.eval graph_db q);
  check_int "retry computes the join" 1
    (Relation.cardinal (Qlang.Cq_eval.eval graph_db q))

let test_fault_plan_join () =
  (* The plan interpreter's probe-join site, hit through the default
     [Query.eval] route (which compiles to a scan + probe chain). *)
  let q = Qlang.Parser.parse_query "Q(x, z) := exists y. E(x, y) & E(y, z)" in
  expect_injected "plan.join" (fun () ->
      Qlang.Query.eval graph_db (Qlang.Query.Fo q));
  check_int "retry computes the join" 1
    (Relation.cardinal (Qlang.Query.eval graph_db (Qlang.Query.Fo q)))

let test_fault_plan_hash_build () =
  (* Force the adaptive join over its cardinality threshold so the
     hash-build arm (and its fault site) is reached even on the tiny
     graph; the nested-loop arm is test_fault_plan_join's territory. *)
  let q = Qlang.Parser.parse_query "Q(x, z) := exists y. E(x, y) & E(y, z)" in
  Qlang.Plan.with_join_threshold 1 (fun () ->
      expect_injected "plan.hash_build" (fun () ->
          Qlang.Query.eval graph_db (Qlang.Query.Fo q));
      check_int "retry hash-builds the join" 1
        (Relation.cardinal (Qlang.Query.eval graph_db (Qlang.Query.Fo q))))

let test_fault_plan_round () =
  let tc =
    Qlang.Parser.parse_program
      "T(x,y) :- E(x,y). T(x,z) :- E(x,y), T(y,z). ?- T."
  in
  expect_injected "plan.round" (fun () ->
      Qlang.Query.eval graph_db (Qlang.Query.Dl tc));
  check_int "retry reaches the fixpoint" 3
    (Relation.cardinal (Qlang.Query.eval graph_db (Qlang.Query.Dl tc)));
  Fault.arm ~site:"plan.round" ~nth:1 ~kind:Fault.Exhaust;
  (match
     Budget.run ~partial:(fun _ -> None) (fun () ->
         Qlang.Query.eval graph_db (Qlang.Query.Dl tc))
   with
  | Budget.Partial { reason = Budget.Fault "plan.round"; _ } -> ()
  | _ -> Alcotest.fail "expected Partial fault:plan.round");
  Fault.disarm ()

let test_fault_oracle_node () =
  let inst = small_inst () in
  expect_injected "oracle.node" (fun () ->
      Exist_pack.all_valid (Exist_pack.ctx inst));
  let retry = Exist_pack.all_valid (Exist_pack.ctx inst) in
  let fresh = Exist_pack.all_valid (Exist_pack.ctx (small_inst ())) in
  check "fault-then-retry equals a fresh run" true
    (List.length retry = List.length fresh
    && List.for_all2 Package.equal retry fresh);
  (* Exhaust mid-search through the budgeted entry point: sound partial. *)
  Fault.arm ~site:"oracle.node" ~nth:4 ~kind:Fault.Exhaust;
  let inst2 = small_inst () in
  (match Frp.enumerate_budgeted ~budget:(Budget.make ()) inst2 ~k:1 with
  | Budget.Partial { best_so_far; reason = Budget.Fault "oracle.node"; _ } -> (
      match best_so_far with
      | Some p -> check "partial package is valid" true (Validity.valid inst2 p)
      | None -> ())
  | _ -> Alcotest.fail "expected Partial fault:oracle.node");
  Fault.disarm ()

(* A PaQL query compiled over a pool big enough for SketchRefine to
   partition (and refine) — the shared workload of the two sketch sites. *)
let sketch_compiled () =
  let rows = List.init 24 (fun i -> [ i; (i mod 7) + 1; (i mod 5) + 1 ]) in
  let db =
    Database.of_relations
      [ Relation.of_int_rows (Schema.make "R" [ "id"; "cost"; "val" ]) rows ]
  in
  Core.Paql_compile.parse_and_compile db
    "SELECT PACKAGE(P) FROM R SUCH THAT SUM(cost) <= 12 AND COUNT(*) <= 4 \
     MAXIMIZE SUM(val)"
  |> Result.get_ok

let test_fault_sketch_partition () =
  let c = sketch_compiled () in
  expect_injected "sketch.partition" (fun () ->
      Sketch.solve ~npartitions:4 c);
  (* retry: the pipeline recovers, and whatever wins is feasible *)
  let o = Sketch.solve ~npartitions:4 c in
  (match o.Sketch.answer with
  | Some a ->
      check "retry package satisfies the query" true
        (Core.Paql_compile.satisfies c a.Core.Paql_compile.package)
  | None -> Alcotest.fail "sketch found no package on retry");
  (* Exhaust mid-partition through the budgeted entry point: the partial
     payload, if any, must still be a feasible package. *)
  Fault.arm ~site:"sketch.partition" ~nth:2 ~kind:Fault.Exhaust;
  (match Sketch.solve_budgeted c with
  | Budget.Partial { best_so_far; reason = Budget.Fault "sketch.partition"; _ }
    -> (
      match best_so_far with
      | Some a ->
          check "partial package satisfies the query" true
            (Core.Paql_compile.satisfies c a.Core.Paql_compile.package)
      | None -> ())
  | Budget.Exact _ -> Alcotest.fail "expected Partial fault:sketch.partition"
  | Budget.Partial _ -> Alcotest.fail "wrong Partial reason");
  Fault.disarm ()

let test_fault_sketch_refine () =
  let c = sketch_compiled () in
  expect_injected "sketch.refine" (fun () -> Sketch.solve ~npartitions:4 c);
  let o = Sketch.solve ~npartitions:4 c in
  check "retry refines at least one partition" true
    (o.Sketch.stats.Sketch.partitions_touched > 0);
  (* Exhaust mid-refine: the deadline lands after the sketch phase, and
     the outcome must still never be an infeasible package. *)
  Fault.arm ~site:"sketch.refine" ~nth:1 ~kind:Fault.Exhaust;
  (match Sketch.solve_budgeted c with
  | Budget.Partial { best_so_far; reason = Budget.Fault "sketch.refine"; _ }
    -> (
      match best_so_far with
      | Some a ->
          check "mid-refine partial package satisfies the query" true
            (Core.Paql_compile.satisfies c a.Core.Paql_compile.package)
      | None -> ())
  | Budget.Exact _ -> Alcotest.fail "expected Partial fault:sketch.refine"
  | Budget.Partial _ -> Alcotest.fail "wrong Partial reason");
  Fault.disarm ()

let test_fault_relax_step () =
  let dist = Qlang.Dist.add "num" Qlang.Dist.numeric Qlang.Dist.empty in
  let db =
    Database.of_relations
      [
        Relation.of_int_rows (Schema.make "R" [ "a"; "b" ])
          [ [ 1; 10 ]; [ 2; 20 ]; [ 5; 50 ] ];
      ]
  in
  let inst =
    Instance.make ~db
      ~select:(Qlang.Query.Fo (Qlang.Parser.parse_query "Q(a, b) := R(a, b) & a = 1"))
      ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
      ~budget:1. ~dist ()
  in
  let site = { Relax.kind = Relax.Const_site (Value.Int 1); dfun = "num" } in
  let run () = Relax.qrpp inst ~sites:[ site ] ~k:1 ~bound:20. ~max_gap:10. in
  expect_injected "relax.step" (fun () -> run ());
  check "retry finds the relaxation" true (Option.is_some (run ()));
  Fault.arm ~site:"relax.step" ~nth:1 ~kind:Fault.Exhaust;
  (match Relax.qrpp_budgeted inst ~sites:[ site ] ~k:1 ~bound:20. ~max_gap:10. with
  | Budget.Partial { best_so_far = None; reason = Budget.Fault "relax.step"; _ }
    ->
      ()
  | _ -> Alcotest.fail "expected Unknown Partial fault:relax.step");
  Fault.disarm ()

let test_fault_adjust_delta () =
  let inst = small_inst ~budget:1. () in
  let extra =
    Database.of_relations
      [ Relation.of_int_rows (Schema.make "R" [ "id"; "score" ]) [ [ 9; 9 ] ] ]
  in
  let run () = Adjust.arpp inst ~extra ~k:1 ~bound:4. ~max_changes:1 in
  expect_injected "adjust.delta" (fun () -> run ());
  check "retry finds the empty adjustment" true (run () = Some []);
  Fault.arm ~site:"adjust.delta" ~nth:1 ~kind:Fault.Exhaust;
  (match Adjust.arpp_budgeted inst ~extra ~k:1 ~bound:4. ~max_changes:1 with
  | Budget.Partial
      { best_so_far = None; reason = Budget.Fault "adjust.delta"; _ } ->
      ()
  | _ -> Alcotest.fail "expected Unknown Partial fault:adjust.delta");
  Fault.disarm ()

let test_fault_rel_maintain () =
  (* Unlike the other sites, [rel.maintain] is absorbed at the site: an
     injected fault degrades incremental cache maintenance to the lazy
     from-scratch rebuild instead of surfacing.  Assert the degradation
     (no caches carried over, counter bumped) and that answers are
     unaffected. *)
  let r0 =
    Relation.of_int_rows (Schema.make "R" [ "a"; "b" ]) [ [ 1; 2 ]; [ 3; 4 ] ]
  in
  ignore (Relation.to_array r0);
  ignore (Relation.col_counts r0);
  ignore (Relation.index_on r0 0);
  let tup = Tuple.of_list [ Value.Int 5; Value.Int 6 ] in
  let was = Observe.enabled () in
  Observe.set_enabled true;
  Observe.reset ();
  Fun.protect ~finally:(fun () -> Observe.set_enabled was) (fun () ->
      Fault.arm ~site:"rel.maintain" ~nth:1 ~kind:Fault.Exn;
      let r1 = Relation.add tup r0 in
      Fault.disarm ();
      check "degraded add still contains the tuple" true (Relation.mem tup r1);
      check_int "degraded add has the right cardinality" 3
        (Relation.cardinal r1);
      check "degraded result carries no sorted array" false
        (Relation.has_array r1);
      check "degraded result carries no counts" false (Relation.has_counts r1);
      check "degraded result carries no index" false
        (Relation.has_index_on r1 0);
      let degraded =
        match List.assoc_opt "rel.maintain_degraded" (Observe.snapshot ()) with
        | Some (Observe.Count n) -> n
        | _ -> 0
      in
      check_int "degradation counter bumped" 1 degraded;
      (* Lazy rebuild after degradation answers like a fresh relation. *)
      check "rebuilt index answers correctly" true
        (Relation.select_eq r1 0 (Value.Int 5) = [ tup ]);
      (* A clean add maintains instead of degrading. *)
      let r2 = Relation.add (Tuple.of_list [ Value.Int 7; Value.Int 8 ]) r0 in
      check "clean add carries the parent's caches" true
        (Relation.has_array r2 && Relation.has_counts r2
        && Relation.has_index_on r2 0));
  (* Exhaust kind propagates: maintenance never swallows budget faults. *)
  Fault.arm ~site:"rel.maintain" ~nth:1 ~kind:Fault.Exhaust;
  (match
     Budget.run ~partial:(fun _ -> None) (fun () -> Relation.add tup r0)
   with
  | Budget.Partial { reason = Budget.Fault "rel.maintain"; _ } -> ()
  | _ -> Alcotest.fail "expected Partial fault:rel.maintain");
  Fault.disarm ()

(* ---------- fault injection: the serving layer ---------- *)

(* Shared shape of the three serving-layer scenarios: boot an
   in-process daemon on a unix socket, arm the site, pipeline two
   requests, and assert that exactly one resolves to a response naming
   the fault (with the status the degradation ladder prescribes) while
   the other is answered exactly — one poisoned request never takes the
   daemon down. *)
let serve_fault_round ~site ~kind ~expected =
  let srv =
    Serve.Server.create
      ~config:{ Serve.Server.default_config with Serve.Server.domains = 1 }
      [ ("team", Workload.Teams.team_instance ()) ]
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pkg-robust-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let lfd = Serve.Server.listen_unix path in
  let d = Domain.spawn (fun () -> Serve.Server.run srv lfd) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop srv;
      Domain.join d;
      try Sys.remove path with _ -> ())
    (fun () ->
      Fault.arm ~site ~nth:1 ~kind;
      Fun.protect ~finally:Fault.disarm @@ fun () ->
      let c = Serve.Client.connect_unix path in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      Serve.Client.send_line c "eval id=1 inst=team";
      Serve.Client.send_line c "eval id=2 inst=team";
      let r1 = Option.get (Serve.Client.recv_line c) in
      let r2 = Option.get (Serve.Client.recv_line c) in
      let faulted, clean =
        if Serve.Proto.response_reason r1 = Some ("fault:" ^ site) then (r1, r2)
        else (r2, r1)
      in
      Alcotest.(check (option string))
        (site ^ ": fault reason names the site")
        (Some ("fault:" ^ site))
        (Serve.Proto.response_reason faulted);
      Alcotest.(check (option string))
        (site ^ ": faulted request status")
        (Some expected)
        (Serve.Proto.response_status faulted);
      Alcotest.(check (option string))
        (site ^ ": other request answered exactly")
        (Some "ok")
        (Serve.Proto.response_status clean))

let test_fault_serve_accept () =
  serve_fault_round ~site:"serve.accept" ~kind:Fault.Exn ~expected:"error";
  (* Exhaust at intake sheds instead of erroring. *)
  serve_fault_round ~site:"serve.accept" ~kind:Fault.Exhaust
    ~expected:"overloaded"

let test_fault_serve_dispatch () =
  serve_fault_round ~site:"serve.dispatch" ~kind:Fault.Exn ~expected:"error";
  serve_fault_round ~site:"serve.dispatch" ~kind:Fault.Exhaust
    ~expected:"overloaded"

let test_fault_serve_respond () =
  (* The respond probe fires before any byte is written, so both kinds
     replace the payload with a whole error line — never torn output. *)
  serve_fault_round ~site:"serve.respond" ~kind:Fault.Exn ~expected:"error";
  serve_fault_round ~site:"serve.respond" ~kind:Fault.Exhaust
    ~expected:"error"

let fault_cases =
  [
    ("pool.task", test_fault_pool_task);
    ("sat.conflict", test_fault_sat_conflict);
    ("qbf.node", test_fault_qbf_node);
    ("count.node", test_fault_count_node);
    ("maxsat.node", test_fault_maxsat_node);
    ("bnb.node", test_fault_bnb_node);
    ("memo.candidates", test_fault_memo_candidates);
    ("memo.compat", test_fault_memo_compat);
    ("rel.maintain", test_fault_rel_maintain);
    ("datalog.round", test_fault_datalog_round);
    ("cq.join", test_fault_cq_join);
    ("plan.join", test_fault_plan_join);
    ("plan.hash_build", test_fault_plan_hash_build);
    ("plan.round", test_fault_plan_round);
    ("oracle.node", test_fault_oracle_node);
    ("sketch.partition", test_fault_sketch_partition);
    ("sketch.refine", test_fault_sketch_refine);
    ("relax.step", test_fault_relax_step);
    ("adjust.delta", test_fault_adjust_delta);
    ("serve.accept", test_fault_serve_accept);
    ("serve.dispatch", test_fault_serve_dispatch);
    ("serve.respond", test_fault_serve_respond);
  ]

let test_every_site_has_a_scenario () =
  Alcotest.(check (list string))
    "fault test matrix covers Fault.sites exactly"
    (List.sort compare Fault.sites)
    (List.sort compare (List.map fst fault_cases))

(* ---------- properties: random budgets never produce unsound answers ---------- *)

let prop_maxsat_budgeted_sound =
  QCheck.Test.make ~name:"MAX-SAT: budgeted partial sound, non-binding exact"
    ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let mi = Gen.maxsat rng ~nvars:5 ~nclauses:8 ~max_weight:9 in
      let opt, _ = Maxsat.solve mi in
      let fuel = 1 + Random.State.int rng 60 in
      let bounded =
        match Maxsat.solve_budgeted ~budget:(Budget.make ~fuel ()) mi with
        | Budget.Exact (w, a) -> w = opt && Maxsat.weight_of mi a = w
        | Budget.Partial { best_so_far = Some (w, a); _ } ->
            Maxsat.weight_of mi a = w && w <= opt
        | Budget.Partial { best_so_far = None; _ } -> true
      in
      let nonbinding =
        match Maxsat.solve_budgeted ~budget:(Budget.make ~fuel:max_int ()) mi with
        | Budget.Exact (w, _) -> w = opt
        | Budget.Partial _ -> false
      in
      bounded && nonbinding)

let random_frp_inst rng =
  let n = 3 + Random.State.int rng 3 in
  let rows = List.init n (fun i -> [ i + 1; 1 + Random.State.int rng 9 ]) in
  let db =
    Database.of_relations
      [ Relation.of_int_rows (Schema.make "R" [ "id"; "score" ]) rows ]
  in
  Instance.make ~db ~select:(Qlang.Query.Identity "R")
    ~cost:Rating.card_or_infinite ~value:(Rating.sum_col ~nonneg:true 1)
    ~budget:2. ()

let prop_frp_budgeted_sound =
  QCheck.Test.make ~name:"FRP: budgeted partial sound, non-binding exact"
    ~count:40
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let inst = random_frp_inst rng in
      let exact = Frp.enumerate inst ~k:1 in
      let value = Rating.eval inst.Instance.value in
      let opt = match exact with Some [ p ] -> value p | _ -> neg_infinity in
      let fuel = 1 + Random.State.int rng 60 in
      let bounded =
        match Frp.enumerate_budgeted ~budget:(Budget.make ~fuel ()) inst ~k:1 with
        | Budget.Exact r -> topk_equal r exact
        | Budget.Partial { best_so_far = Some p; _ } ->
            Validity.valid inst p && value p <= opt
        | Budget.Partial { best_so_far = None; _ } -> true
      in
      let nonbinding =
        match Frp.enumerate_budgeted ~budget:(Budget.make ()) inst ~k:1 with
        | Budget.Exact r -> topk_equal r exact
        | Budget.Partial _ -> false
      in
      bounded && nonbinding)

let prop_sat_cap_never_wrong =
  QCheck.Test.make ~name:"SAT: conflict cap never yields a wrong model"
    ~count:80
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Gen.cnf3 rng ~nvars:5 ~nclauses:10 in
      let cap = 1 + Random.State.int rng 6 in
      match Sat.solve_budgeted ~conflict_limit:cap f with
      | Budget.Exact (Some a) -> Cnf.holds f a
      | Budget.Exact None -> Cnf.brute_force_sat f = None
      | Budget.Partial { best_so_far = None; _ } -> true
      | Budget.Partial { best_so_far = Some _; _ } -> false)

(* ---------- suite ---------- *)

let fault_suite =
  List.map (fun (site, fn) -> Alcotest.test_case site `Quick fn) fault_cases

let full_suite =
  [
    ( "budget",
      [
        Alcotest.test_case "fuel" `Quick test_fuel;
        Alcotest.test_case "deadline" `Quick test_deadline;
        Alcotest.test_case "cancel and subtoken" `Quick test_cancel_and_subtoken;
        Alcotest.test_case "run outcomes" `Quick test_run_outcomes;
        Alcotest.test_case "reason strings" `Quick test_reason_strings;
        Alcotest.test_case "fault spec parsing" `Quick test_fault_parse;
      ] );
    ( "outcomes",
      [
        Alcotest.test_case "FRP partial sound" `Quick test_frp_budgeted_sound;
        Alcotest.test_case "CPP verified lower bound" `Quick
          test_cpp_budgeted_lower_bound;
        Alcotest.test_case "MBP partial unknown" `Quick test_mbp_budgeted_unknown;
        Alcotest.test_case "QRPP/ARPP partial unknown" `Quick
          test_relax_adjust_budgeted_unknown;
        Alcotest.test_case "non-binding budget equivalence" `Quick
          test_nonbinding_budget_equivalence;
        Alcotest.test_case "SAT conflict cap" `Quick test_sat_conflict_cap;
      ] );
    ( "dispatch",
      [
        Alcotest.test_case "degrades on constant bound" `Quick
          test_degrade_const_bound;
        Alcotest.test_case "degrades on items" `Quick test_degrade_items;
        Alcotest.test_case "generic stays partial" `Quick
          test_generic_stays_partial;
      ] );
    ("pool", [ Alcotest.test_case "cancellation" `Quick test_pool_cancellation ]);
    ( "fault",
      Alcotest.test_case "matrix covers all sites" `Quick
        test_every_site_has_a_scenario
      :: fault_suite );
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_maxsat_budgeted_sound;
        QCheck_alcotest.to_alcotest prop_frp_budgeted_sound;
        QCheck_alcotest.to_alcotest prop_sat_cap_never_wrong;
      ] );
  ]

let () =
  let env_site =
    match Sys.getenv_opt "PKG_FAULT" with
    | None | Some "" -> None
    | Some s -> Option.map (fun (site, _, _) -> site) (Fault.parse s)
  in
  match env_site with
  | Some site when List.mem_assoc site fault_cases ->
      (* CI fault matrix: PKG_FAULT armed this site at module load; run
         exactly its scenario (which re-arms deterministically) so the
         injected failure lands in the code under test and nowhere else. *)
      Fault.disarm ();
      Alcotest.run "robust"
        [
          ( "fault:" ^ site,
            [ Alcotest.test_case site `Quick (List.assoc site fault_cases) ] );
        ]
  | _ -> Alcotest.run "robust" full_suite
