(* Tests for the serving daemon: protocol round trips, end-to-end
   service over a unix socket against the one-shot oracle, admission
   control and load shedding, deadline degradation, fault injection at
   the serve.* sites, per-request trace records, and the mixed-workload
   equivalence property (served over N domains = sequential one-shot). *)

module Proto = Serve.Proto
module Server = Serve.Server
module Client = Serve.Client
module Fault = Robust.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- infrastructure ---------- *)

let team_reg () = [ ("team", Workload.Teams.team_instance ()) ]

let with_server ?config ?(reg = team_reg ()) f =
  let srv = Server.create ?config reg in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pkg-serve-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  let lfd = Server.listen_unix path in
  let d = Domain.spawn (fun () -> Server.run srv lfd) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Domain.join d;
      try Sys.remove path with _ -> ())
    (fun () -> f srv path)

(* Pipeline [lines] to the server, read as many responses back, and
   return them keyed by id. *)
let round_trip path lines =
  let c = Client.connect_unix path in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      List.iter (Client.send_line c) lines;
      let n = List.length (List.filter (fun l -> not (Proto.is_comment l)) lines) in
      let tbl = Hashtbl.create 16 in
      for _ = 1 to n do
        match Client.recv_line c with
        | None -> Alcotest.fail "server closed the connection mid-batch"
        | Some resp -> (
            match Proto.response_id resp with
            | None -> Alcotest.failf "unparseable response: %s" resp
            | Some id -> Hashtbl.replace tbl id resp)
      done;
      tbl)

let status_of resp = Option.value (Proto.response_status resp) ~default:"?"
let data_of resp = Option.value (Proto.response_data resp) ~default:"?"

(* ---------- protocol ---------- *)

let test_proto_round_trip () =
  let reqs =
    [
      Proto.request ~id:1 Proto.Ping;
      Proto.request ~id:2 ~inst:"team" Proto.Eval;
      Proto.request ~id:3 ~inst:"team"
        ~query:"Q(x) := exists s, c, v. expert(x, s, c, v) & s = \"backend\""
        Proto.Eval;
      Proto.request ~id:4 ~inst:"team" ~k:3 ~timeout:0.5 Proto.Topk;
      Proto.request ~id:5 ~inst:"team" ~bound:8.5 Proto.Count;
      Proto.request ~inst:"weird name\twith\\quotes\"" Proto.Analyze;
      Proto.request ~id:7 ~burn_ms:25 Proto.Burn;
      Proto.request ~id:8 ~inst:"team" ~query:"T(x) :- E(x)." ~datalog:true
        Proto.Eval;
      Proto.request ~id:9 ~inst:"team"
        ~query:"SELECT PACKAGE(P) FROM expert SUCH THAT SUM(salary) <= 300"
        ~approx:true Proto.Paql;
    ]
  in
  List.iter
    (fun r ->
      match Proto.parse_request (Proto.request_to_line r) with
      | Ok r' ->
          check ("round trip: " ^ Proto.request_to_line r) true (r = r')
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    reqs

let test_proto_errors () =
  let bad l =
    match Proto.parse_request l with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should reject: %s" l
  in
  bad "";
  bad "frobnicate id=1";
  bad "eval inst=\"unterminated";
  bad "eval k=notanint";
  bad "eval timeout=nan=3";
  bad "eval unknownfield=1";
  bad "eval naked-token"

let test_response_extractors () =
  let line =
    Proto.response ~id:42 ~verb:"topk" ~status:Proto.Partial ~reason:"deadline"
      ~ms:12.5 ~data:"{\"best\": null}" ()
  in
  check_int "id" 42 (Option.get (Proto.response_id line));
  check_str "status" "partial" (Option.get (Proto.response_status line));
  check_str "reason" "deadline" (Option.get (Proto.response_reason line));
  check_str "data" "{\"best\": null}" (Option.get (Proto.response_data line));
  check "ms" true (Option.get (Proto.response_ms line) = 12.5)

(* ---------- end to end vs the oracle ---------- *)

let mixed_lines =
  [
    "ping id=1";
    "eval id=2 inst=team";
    "topk id=3 inst=team k=2";
    "count id=4 inst=team bound=8";
    "maxbound id=5 inst=team k=1";
    "rpp id=6 inst=team k=1";
    "analyze id=7 inst=team";
    "eval id=8 inst=team q=\"Q(a, b) := conflict(a, b)\"";
    "topk id=9 inst=team k=3";
    "count id=10 inst=team bound=25";
    "paql id=11 inst=team q=\"SELECT PACKAGE(P) FROM expert SUCH THAT \
     SUM(salary) <= 300 AND COUNT(*) <= 3 MAXIMIZE SUM(score)\"";
    "paql id=12 inst=team approx=true q=\"SELECT PACKAGE(P) FROM expert \
     SUCH THAT SUM(salary) <= 300 AND COUNT(*) <= 3 MAXIMIZE SUM(score)\"";
  ]

let test_end_to_end_oracle () =
  with_server (fun srv path ->
      let responses = round_trip path mixed_lines in
      List.iter
        (fun line ->
          let oracle = Server.one_shot srv line in
          let id = Option.get (Proto.response_id oracle) in
          match Hashtbl.find_opt responses id with
          | None -> Alcotest.failf "no response for id %d" id
          | Some served ->
              check_str
                (Printf.sprintf "status (id %d)" id)
                (status_of oracle) (status_of served);
              check_str
                (Printf.sprintf "data (id %d)" id)
                (data_of oracle) (data_of served))
        mixed_lines)

let test_per_request_errors () =
  with_server (fun _srv path ->
      let responses =
        round_trip path
          [
            "eval id=1";  (* missing inst *)
            "eval id=2 inst=nosuch";
            "eval id=3 inst=team q=\"Q(x) := nonsense(((\"";
            "metrics id=4";  (* fine: control verb *)
            "eval id=5 inst=team";  (* daemon still healthy *)
          ]
      in
      check_str "missing inst" "error" (status_of (Hashtbl.find responses 1));
      check_str "unknown inst" "error" (status_of (Hashtbl.find responses 2));
      check_str "parse error" "error" (status_of (Hashtbl.find responses 3));
      check_str "metrics ok" "ok" (status_of (Hashtbl.find responses 4));
      check_str "healthy after errors" "ok" (status_of (Hashtbl.find responses 5)))

(* ---------- admission control and degradation ---------- *)

let test_queue_full_shed () =
  (* one slow worker, a queue of one: a burst of burns must shed with
     an explicit overloaded/queue_full refusal, and every request must
     still get exactly one response. *)
  let config =
    { Server.default_config with domains = 1; queue_cap = 1; trace = None }
  in
  with_server ~config (fun _srv path ->
      let lines =
        List.init 8 (fun i -> Printf.sprintf "burn id=%d ms=40" (i + 1))
      in
      let responses = round_trip path lines in
      check_int "every request answered" 8 (Hashtbl.length responses);
      let count st =
        Hashtbl.fold
          (fun _ r acc -> if status_of r = st then acc + 1 else acc)
          responses 0
      in
      check "some ok" true (count "ok" >= 1);
      let shed =
        Hashtbl.fold
          (fun _ r acc ->
            if
              status_of r = "overloaded"
              && Proto.response_reason r = Some "queue_full"
            then acc + 1
            else acc)
          responses 0
      in
      check "burst shed with queue_full" true (shed >= 1))

let test_deadline_degradation () =
  (* a tight server deadline turns long burns into sound partial
     answers, and requests stuck behind them into deadline_in_queue
     sheds — never a hang, never a crash. *)
  let config =
    {
      Server.default_config with
      domains = 1;
      queue_cap = 64;
      deadline = Some 0.08;
    }
  in
  with_server ~config (fun _srv path ->
      let lines =
        List.init 4 (fun i -> Printf.sprintf "burn id=%d ms=300" (i + 1))
      in
      let responses = round_trip path lines in
      check_int "every request answered" 4 (Hashtbl.length responses);
      let statuses =
        Hashtbl.fold (fun _ r acc -> status_of r :: acc) responses []
      in
      check "first burn degrades to partial" true
        (List.mem "partial" statuses);
      let dq =
        Hashtbl.fold
          (fun _ r acc ->
            if Proto.response_reason r = Some "deadline_in_queue" then acc + 1
            else acc)
          responses 0
      in
      check "later burns shed in queue" true (dq >= 1);
      (* client timeout= tighter than the server default also degrades *)
      let r2 = round_trip path [ "burn id=9 ms=300 timeout=0.03" ] in
      check_str "client timeout degrades" "partial"
        (status_of (Hashtbl.find r2 9)))

(* ---------- fault injection at the serve sites ---------- *)

let serve_sites = [ "serve.accept"; "serve.dispatch"; "serve.respond" ]

let test_fault_sites () =
  List.iter
    (fun site ->
      List.iter
        (fun kind ->
          with_server (fun _srv path ->
              Fault.arm ~site ~nth:1 ~kind;
              Fun.protect ~finally:Fault.disarm (fun () ->
                  let responses =
                    round_trip path
                      [ "eval id=1 inst=team"; "eval id=2 inst=team" ]
                  in
                  check_int
                    (site ^ ": both requests answered")
                    2 (Hashtbl.length responses);
                  (* exactly one request absorbed the fault; the fault
                     response names the site, and the daemon answered
                     the other request exactly *)
                  let faulted =
                    Hashtbl.fold
                      (fun _ r acc ->
                        match Proto.response_reason r with
                        | Some reason
                          when reason = "fault:" ^ site ->
                            r :: acc
                        | _ -> acc)
                      responses []
                  in
                  check_int (site ^ ": one fault response") 1
                    (List.length faulted);
                  let expected_status =
                    match kind with
                    | Fault.Exn -> "error"
                    | Fault.Exhaust -> (
                        (* exhaustion inside a budgeted region degrades
                           to partial; at accept/dispatch it sheds *)
                        match site with
                        | "serve.respond" -> "error"
                        | _ -> "overloaded")
                  in
                  check_str
                    (site ^ ": fault status")
                    expected_status
                    (status_of (List.hd faulted));
                  let ok =
                    Hashtbl.fold
                      (fun _ r acc ->
                        if status_of r = "ok" then acc + 1 else acc)
                      responses 0
                  in
                  check_int (site ^ ": other request exact") 1 ok)))
        [ Fault.Exn; Fault.Exhaust ])
    serve_sites

(* ---------- per-request trace records ---------- *)

let test_trace_sink () =
  let records = ref [] in
  let rlock = Mutex.create () in
  let was_enabled = Observe.enabled () in
  Observe.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Observe.set_enabled was_enabled)
    (fun () ->
      let config =
        {
          Server.default_config with
          domains = 2;
          trace =
            Some
              (fun line ->
                Mutex.protect rlock (fun () -> records := line :: !records));
        }
      in
      with_server ~config (fun _srv path ->
          let responses =
            round_trip path [ "eval id=1 inst=team"; "topk id=2 inst=team k=1" ]
          in
          check_int "both answered" 2 (Hashtbl.length responses));
      let records = !records in
      check_int "one record per data-plane request" 2 (List.length records);
      List.iter
        (fun r ->
          check "record is serve_trace" true
            (String.length r > 16 && String.sub r 0 16 = "{\"serve_trace\": ");
          let has needle =
            let n = String.length needle and h = String.length r in
            let rec go i =
              i + n <= h && (String.sub r i n = needle || go (i + 1))
            in
            go 0
          in
          check "has status" true (has "\"status\": \"ok\"");
          check "has stage timings" true
            (has "\"queue_ms\": " && has "\"total_ms\": ");
          check "has counter deltas" true (has "\"counters\": {"))
        records)

(* ---------- mixed-workload equivalence property ---------- *)

(* Generator of one random data-plane request line (id assigned by the
   caller).  Queries stay within the team schema so answers are
   nontrivial but cheap. *)
let gen_request =
  QCheck.Gen.(
    oneof
      [
        return (fun id -> Printf.sprintf "eval id=%d inst=team" id);
        map
          (fun k id -> Printf.sprintf "topk id=%d inst=team k=%d" id k)
          (int_range 1 3);
        map
          (fun b id -> Printf.sprintf "count id=%d inst=team bound=%d" id b)
          (int_range 0 30);
        map
          (fun k id -> Printf.sprintf "maxbound id=%d inst=team k=%d" id k)
          (int_range 1 2);
        map
          (fun k id -> Printf.sprintf "rpp id=%d inst=team k=%d" id k)
          (int_range 1 2);
        return (fun id -> Printf.sprintf "analyze id=%d inst=team" id);
        map
          (fun sel id ->
            Printf.sprintf "eval id=%d inst=team q=\"%s\"" id
              (if sel then "Q(a, b) := conflict(a, b)"
               else "Q(n) := exists s, c, v. expert(n, s, c, v) & c < 105"))
          bool;
      ])

let gen_workload =
  QCheck.Gen.(
    list_size (int_range 4 16) gen_request
    >>= fun fs ->
    int_range 1 3 >>= fun domains ->
    return (List.mapi (fun i f -> f (i + 1)) fs, domains))

let arb_workload =
  QCheck.make
    ~print:(fun (lines, domains) ->
      Printf.sprintf "domains=%d\n%s" domains (String.concat "\n" lines))
    gen_workload

(* Served over N racing domains, a mixed workload returns answer for
   answer the results of sequential one-shot dispatch. *)
let prop_served_equals_oneshot =
  QCheck.Test.make ~name:"serve: N-domain service = sequential one-shot"
    ~count:15 arb_workload (fun (lines, domains) ->
      let config = { Server.default_config with domains } in
      with_server ~config (fun srv path ->
          let responses = round_trip path lines in
          List.for_all
            (fun line ->
              let oracle = Server.one_shot srv line in
              let id = Option.get (Proto.response_id oracle) in
              match Hashtbl.find_opt responses id with
              | None -> false
              | Some served ->
                  status_of served = status_of oracle
                  && data_of served = data_of oracle)
            lines))

(* Same property under an injected fault at each serve site: exactly
   one request absorbs the fault (error or shed, naming the site), the
   daemon keeps serving, and every other answer still matches the
   oracle. *)
let prop_served_fault_resolves =
  QCheck.Test.make
    ~name:"serve: faulted request resolves, others match one-shot" ~count:9
    arb_workload (fun (lines, domains) ->
      List.for_all
        (fun site ->
          let config = { Server.default_config with domains } in
          with_server ~config (fun srv path ->
              (* oracle answers before arming: one_shot must stay clean *)
              let oracles =
                List.map
                  (fun line ->
                    let o = Server.one_shot srv line in
                    (Option.get (Proto.response_id o), o))
                  lines
              in
              Fault.arm ~site ~nth:1 ~kind:Fault.Exn;
              Fun.protect ~finally:Fault.disarm (fun () ->
                  let responses = round_trip path lines in
                  Hashtbl.length responses = List.length lines
                  && List.for_all
                       (fun (id, oracle) ->
                         match Hashtbl.find_opt responses id with
                         | None -> false
                         | Some served ->
                             (Proto.response_reason served
                             = Some ("fault:" ^ site))
                             || status_of served = status_of oracle
                                && data_of served = data_of oracle)
                       oracles
                  && Hashtbl.fold
                       (fun _ r acc ->
                         if Proto.response_reason r = Some ("fault:" ^ site)
                         then acc + 1
                         else acc)
                       responses 0
                     = 1)))
        serve_sites)

(* ---------- registration ---------- *)

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "request round trip" `Quick test_proto_round_trip;
          Alcotest.test_case "parse errors" `Quick test_proto_errors;
          Alcotest.test_case "response extractors" `Quick
            test_response_extractors;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "mixed verbs match one-shot oracle" `Quick
            test_end_to_end_oracle;
          Alcotest.test_case "per-request errors are contained" `Quick
            test_per_request_errors;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "full queue sheds with queue_full" `Quick
            test_queue_full_shed;
          Alcotest.test_case "deadlines degrade and shed" `Quick
            test_deadline_degradation;
        ] );
      ( "faults",
        [
          Alcotest.test_case "serve.* sites resolve per request" `Quick
            test_fault_sites;
        ] );
      ( "trace",
        [
          Alcotest.test_case "NDJSON record per request" `Quick test_trace_sink;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_served_equals_oneshot; prop_served_fault_resolves ] );
    ]
