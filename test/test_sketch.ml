(* SketchRefine tests: soundness of every approximate answer (checked via
   the instance's Validity view), the approximation-ratio floor against
   the exact oracle, mid-refine budget exhaustion, and the Dispatch approx
   route over shrunken candidate pools. *)

module Value = Relational.Value
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Paql_compile = Core.Paql_compile
module Package = Core.Package
module Instance = Core.Instance
module Validity = Core.Validity
module Rating = Core.Rating
module Dispatch = Core.Dispatch
module Budget = Robust.Budget

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let db_of rows =
  Database.of_relations
    [ Relation.of_int_rows (Schema.make "R" [ "id"; "cost"; "val" ]) rows ]

let compile_str db src = Result.get_ok (Paql_compile.parse_and_compile db src)

let random_db rng ~n =
  db_of
    (List.init n (fun i ->
         [ i; 1 + Random.State.int rng 9; Random.State.int rng 8 ]))

(* knapsack-shaped: the family the 1/2-approximation floor covers *)
let random_query rng =
  let budget = 8 + Random.State.int rng 20 in
  let extra =
    if Random.State.bool rng then
      Printf.sprintf " AND COUNT(*) <= %d" (2 + Random.State.int rng 4)
    else ""
  in
  Printf.sprintf
    "SELECT PACKAGE(P) FROM R SUCH THAT SUM(cost) <= %d%s MAXIMIZE SUM(val)"
    budget extra

(* ---------- pipeline basics ---------- *)

let test_solve_basic () =
  let rng = Random.State.make [| 11 |] in
  let c = compile_str (random_db rng ~n:60) (random_query rng) in
  let o = Sketch.solve ~npartitions:5 c in
  (match o.Sketch.answer with
  | Some a ->
      check "answer satisfies the query" true
        (Paql_compile.satisfies c a.Paql_compile.package)
  | None -> Alcotest.fail "no answer on a satisfiable query");
  check_int "partitions" 5 o.Sketch.stats.Sketch.npartitions;
  check "refine touched some partition" true
    (o.Sketch.stats.Sketch.partitions_touched >= 0)

let test_solve_infeasible () =
  (* a nonempty package is forced (COUNT >= 1) but MAX(cost) <= 0 rules
     out every all-positive-cost tuple: nothing qualifies *)
  let db = db_of [ [ 1; 3; 4 ]; [ 2; 5; 1 ] ] in
  let c =
    compile_str db
      "SELECT PACKAGE(P) FROM R SUCH THAT COUNT(*) >= 1 AND MAX(cost) <= 0"
  in
  let o = Sketch.solve c in
  check "no answer" true (o.Sketch.answer = None);
  check "winner none" true (o.Sketch.stats.Sketch.winner = "none")

(* ---------- property (a): SketchRefine answers are Validity-valid ---------- *)

let prop_sketch_sound =
  QCheck.Test.make ~count:80
    ~name:"sketch: every answer satisfies all global constraints (Validity)"
    (QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_range 20 200)))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let c = compile_str (random_db rng ~n) (random_query rng) in
      let o = Sketch.solve c in
      match o.Sketch.answer with
      | None -> true
      | Some a ->
          Paql_compile.satisfies c a.Paql_compile.package
          && Validity.valid c.Paql_compile.inst a.Paql_compile.package)

(* ---------- property (c): approximation ratio ≥ 1/2 ---------- *)

let ratios = ref []

let prop_sketch_ratio =
  QCheck.Test.make ~count:50
    ~name:"sketch: objective ≥ 1/2 of the exact optimum"
    (QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_range 15 50)))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let c = compile_str (random_db rng ~n) (random_query rng) in
      match Paql_compile.solve_exact c with
      | None -> Sketch.(solve c).answer = None
      | Some exact when exact.Paql_compile.objective <= 0.0 -> true
      | Some exact -> (
          match Sketch.(solve c).answer with
          | None -> false
          | Some approx ->
              let r =
                approx.Paql_compile.objective /. exact.Paql_compile.objective
              in
              ratios := r :: !ratios;
              r >= 0.5))

let test_ratio_recorded () =
  (* runs after the property: record the observed floor/mean in the test
     output so regressions in quality (not just soundness) are visible *)
  match !ratios with
  | [] -> ()
  | rs ->
      let lo = List.fold_left Float.min infinity rs in
      let mean = List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs) in
      Printf.printf "sketch approx ratio: min %.3f mean %.3f over %d runs\n%!"
        lo mean (List.length rs);
      check "observed floor ≥ 0.5" true (lo >= 0.5)

(* ---------- mid-refine budget exhaustion is sound (satellite) ---------- *)

let test_budget_mid_refine_sound () =
  let rng = Random.State.make [| 42 |] in
  let c = compile_str (random_db rng ~n:120) (random_query rng) in
  (* sweep fuel so exhaustion lands at every stage of the pipeline,
     including mid-refine: a Partial payload must always be feasible *)
  let saw_partial = ref false in
  List.iter
    (fun fuel ->
      match Sketch.solve_budgeted ~budget:(Budget.make ~fuel ()) c with
      | Budget.Exact o -> (
          match o.Sketch.answer with
          | Some a ->
              check "exact-at-fuel answer feasible" true
                (Paql_compile.satisfies c a.Paql_compile.package)
          | None -> ())
      | Budget.Partial { best_so_far; _ } -> (
          saw_partial := true;
          match best_so_far with
          | Some a ->
              check "mid-pipeline partial is feasible" true
                (Paql_compile.satisfies c a.Paql_compile.package)
          | None -> ()))
    [ 1; 5; 20; 100; 500; 2_000; 10_000 ];
  check "some fuel level actually exhausted" true !saw_partial

(* ---------- instance-level shrinking + Dispatch approx route ---------- *)

let big_instance n =
  let rows = List.init n (fun i -> [ i; (i mod 9) + 1; i mod 11 ]) in
  Instance.make ~db:(db_of rows)
    ~select:(Qlang.Query.Identity "R")
    ~cost:(Rating.sum_col ~nonneg:true 1)
    ~value:(Rating.sum_col 2) ~budget:12.
    ~size_bound:(Core.Size_bound.Const 3) ()

let test_shrink_candidates () =
  let inst = big_instance 400 in
  (match Sketch.shrink_candidates inst ~max_cands:64 with
  | Some (rel, partitions) ->
      check "reduced to the cap" true (Relation.cardinal rel <= 64);
      check "kept some candidates" true (Relation.cardinal rel > 0);
      check "sampled partitions" true (partitions > 0);
      check "schema preserved" true
        ((Relation.schema rel).Schema.attrs
        = (Relation.schema (Instance.candidates inst)).Schema.attrs)
  | None -> Alcotest.fail "expected a shrink on 400 candidates");
  check "small pools stay exact" true
    (Sketch.shrink_candidates (big_instance 10) ~max_cands:64 = None)

let test_dispatch_approx_route () =
  Sketch.install ();
  check "shrinker registered" true (Dispatch.approx_available ());
  let inst = big_instance 300 in
  match Dispatch.topk_approx ~max_cands:50 inst ~k:3 with
  | Budget.Exact (Some pkgs), Some stats ->
      check_int "stats.from" 300 stats.Dispatch.from_cands;
      check "stats.to within cap" true (stats.Dispatch.to_cands <= 50);
      check_int "k packages" 3 (List.length pkgs);
      (* soundness: every package is valid against the ORIGINAL instance *)
      List.iter
        (fun p -> check "approx package valid on original" true
            (Validity.valid inst p))
        pkgs;
      let report = Dispatch.report_approx inst ~stats in
      check "report certifies the route" true
        (List.exists
           (fun note ->
             String.length note >= 12 && String.sub note 0 12 = "approx route")
           report.Analysis.Advisor.notes)
  | (Budget.Exact _ | Budget.Partial _), _ ->
      Alcotest.fail "expected Exact answers with stats"

let test_dispatch_exact_below_threshold () =
  Sketch.install ();
  let inst = big_instance 20 in
  match Dispatch.topk_approx ~max_cands:50 inst ~k:2 with
  | outcome, None ->
      (* no shrink: identical to the exact budgeted route *)
      check "exact path answers" true
        (match outcome with Budget.Exact (Some _) -> true | _ -> false)
  | _, Some _ -> Alcotest.fail "pool of 20 must not be shrunk"

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sketch"
    [
      ( "pipeline",
        [
          Alcotest.test_case "basic solve" `Quick test_solve_basic;
          Alcotest.test_case "infeasible query" `Quick test_solve_infeasible;
        ] );
      ( "properties",
        qsuite [ prop_sketch_sound; prop_sketch_ratio ]
        @ [ Alcotest.test_case "ratio floor recorded" `Quick test_ratio_recorded ]
      );
      ( "budget",
        [
          Alcotest.test_case "mid-refine exhaustion sound" `Quick
            test_budget_mid_refine_sound;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "shrink_candidates" `Quick test_shrink_candidates;
          Alcotest.test_case "approx route sound" `Quick
            test_dispatch_approx_route;
          Alcotest.test_case "below threshold stays exact" `Quick
            test_dispatch_exact_below_threshold;
        ] );
    ]
