(* Tests for the logic substrate: CNF/DNF, the DPLL solver, the model
   counter, MAX-WEIGHT SAT and the QBF solver — each validated against
   brute force. *)

module Cnf = Solvers.Cnf
module Dnf = Solvers.Dnf
module Sat = Solvers.Sat
module Count = Solvers.Count
module Maxsat = Solvers.Maxsat
module Qbf = Solvers.Qbf
module Gen = Solvers.Gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- CNF basics ---------- *)

let test_cnf_semantics () =
  let f = Cnf.make ~nvars:3 [ [ 1; -2; 3 ]; [ -1; 2; 3 ] ] in
  let a = [| false; true; true; false |] in
  check "clause holds" true (Cnf.clause_holds [ 1; -2; 3 ] [| false; true; false; true |]);
  check "formula holds" true (Cnf.holds f a);
  check "lit pos" true (Cnf.lit_holds 1 a);
  check "lit neg" true (Cnf.lit_holds (-3) [| false; false; false; false |]);
  check_int "var" 3 (Cnf.var (-3));
  check "is_pos" false (Cnf.is_pos (-3))

let test_cnf_validation () =
  Alcotest.check_raises "zero literal"
    (Invalid_argument "Cnf.make: bad literal 0 (nvars = 2)") (fun () ->
      ignore (Cnf.make ~nvars:2 [ [ 0 ] ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cnf.make: bad literal 5 (nvars = 2)") (fun () ->
      ignore (Cnf.make ~nvars:2 [ [ 5 ] ]))

let test_assignments_enumeration () =
  check_int "2^3 assignments" 8 (List.length (List.of_seq (Cnf.assignments 3)));
  check_int "2^0 assignments" 1 (List.length (List.of_seq (Cnf.assignments 0)))

let test_dnf_negation () =
  let d = Dnf.make ~nvars:3 [ [ 1; 2 ]; [ -3 ] ] in
  let neg = Dnf.negate d in
  Seq.iter
    (fun a -> check "de morgan" true (Dnf.holds d a = not (Cnf.holds neg a)))
    (Cnf.assignments 3)

(* ---------- SAT ---------- *)

let test_sat_known () =
  let sat = Cnf.make ~nvars:2 [ [ 1; 2 ]; [ -1; 2 ] ] in
  (match Sat.solve sat with
  | Some a -> check "model satisfies" true (Cnf.holds sat a)
  | None -> Alcotest.fail "should be satisfiable");
  let unsat = Cnf.make ~nvars:1 [ [ 1 ]; [ -1 ] ] in
  check "unsat" false (Sat.satisfiable unsat)

let test_sat_assumptions () =
  let f = Cnf.make ~nvars:2 [ [ 1; 2 ] ] in
  check "assumption blocks" false
    (Option.is_some (Sat.solve_with_assumptions f [ -1; -2 ]));
  check "assumption fine" true
    (Option.is_some (Sat.solve_with_assumptions f [ -1 ]))

let prop_sat_matches_brute =
  QCheck.Test.make ~name:"DPLL = brute force" ~count:150
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Gen.cnf3 rng ~nvars:5 ~nclauses:8 in
      let dpll = Sat.solve f in
      let brute = Cnf.brute_force_sat f in
      (match dpll with Some a -> Cnf.holds f a | None -> true)
      && Option.is_some dpll = Option.is_some brute)

(* ---------- counting ---------- *)

let prop_count_matches_brute =
  QCheck.Test.make ~name:"#SAT: DPLL counting = brute force" ~count:100
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Gen.cnf3 rng ~nvars:6 ~nclauses:7 in
      Count.count_models f = Count.brute_count f)

let test_count_free_vars () =
  (* x1 unused: count doubles. *)
  let f = Cnf.make ~nvars:2 [ [ 2 ] ] in
  check_int "free variable multiplier" 2 (Count.count_models f)

let test_count_trivial () =
  check_int "no clauses" 4 (Count.count_models (Cnf.make ~nvars:2 []));
  check_int "contradiction" 0
    (Count.count_models (Cnf.make ~nvars:2 [ [ 1 ]; [ -1 ] ]))

let test_restricted_counters () =
  (* φ(X,Y) = ∃x1 (x1 ∨ y) — true for both y values (choose x1 = 1). *)
  let f = Cnf.make ~nvars:2 [ [ 1; 2 ] ] in
  check_int "#Σ₁SAT" 2 (Count.sharp_sigma1 ~nx:1 ~ny:1 f);
  (* ψ(X,Y) = (x1 ∧ y): ∀x1 ψ is false for y=0 and false for y=1 (x1=0). *)
  let d = Dnf.make ~nvars:2 [ [ 1; 2 ] ] in
  check_int "#Π₁SAT none" 0 (Count.sharp_pi1 ~nx:1 ~ny:1 d);
  (* ψ = (x1 ∧ y) ∨ (¬x1 ∧ y): ∀x1 ψ holds iff y. *)
  let d2 = Dnf.make ~nvars:2 [ [ 1; 2 ]; [ -1; 2 ] ] in
  check_int "#Π₁SAT one" 1 (Count.sharp_pi1 ~nx:1 ~ny:1 d2)

let prop_sigma1_brute =
  QCheck.Test.make ~name:"#Σ₁SAT via SAT = brute force" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nx = 2 and ny = 3 in
      let f = Gen.cnf3 rng ~nvars:(nx + ny) ~nclauses:5 in
      let brute =
        Count.count_y ~ny (fun ya ->
            Seq.exists
              (fun xa ->
                let full =
                  Array.init (nx + ny + 1) (fun v ->
                      if v = 0 then false else if v <= nx then xa.(v) else ya.(v - nx))
                in
                Cnf.holds f full)
              (Cnf.assignments nx))
      in
      Count.sharp_sigma1 ~nx ~ny f = brute)

(* ---------- MAX-WEIGHT SAT ---------- *)

let test_maxsat_known () =
  (* (x1) w=5, (¬x1) w=3: optimum 5. *)
  let inst = Maxsat.make (Cnf.make ~nvars:1 [ [ 1 ]; [ -1 ] ]) [ 5; 3 ] in
  let w, a = Maxsat.solve inst in
  check_int "optimum" 5 w;
  check_int "witness weight" 5 (Maxsat.weight_of inst a)

let test_maxsat_validation () =
  Alcotest.check_raises "weight count"
    (Invalid_argument "Maxsat.make: weight count differs from clause count")
    (fun () -> ignore (Maxsat.make (Cnf.make ~nvars:1 [ [ 1 ] ]) []));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Maxsat.make: negative weight") (fun () ->
      ignore (Maxsat.make (Cnf.make ~nvars:1 [ [ 1 ] ]) [ -1 ]))

let prop_maxsat_matches_brute =
  QCheck.Test.make ~name:"MAX-WEIGHT SAT: B&B = brute force" ~count:80
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let inst = Gen.maxsat rng ~nvars:5 ~nclauses:7 ~max_weight:9 in
      let w, a = Maxsat.solve inst in
      w = Maxsat.brute_force inst && Maxsat.weight_of inst a = w)

(* ---------- QBF ---------- *)

let test_qbf_known () =
  (* ∀x1 ∃x2 (x1 ≠ x2) as CNF (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2). *)
  let m = Qbf.M_cnf (Cnf.make ~nvars:2 [ [ 1; 2 ]; [ -1; -2 ] ]) in
  check "forall-exists" true
    (Qbf.solve (Qbf.make [ (Qbf.Q_forall, [ 1 ]); (Qbf.Q_exists, [ 2 ]) ] m));
  check "exists-forall" false
    (Qbf.solve (Qbf.make [ (Qbf.Q_exists, [ 1 ]); (Qbf.Q_forall, [ 2 ]) ] m))

let test_qbf_validation () =
  let m = Qbf.M_cnf (Cnf.make ~nvars:2 [ [ 1; 2 ] ]) in
  Alcotest.check_raises "unquantified"
    (Invalid_argument "Qbf.make: unquantified variable") (fun () ->
      ignore (Qbf.make [ (Qbf.Q_exists, [ 1 ]) ] m));
  Alcotest.check_raises "double quantified"
    (Invalid_argument "Qbf.make: variable quantified twice") (fun () ->
      ignore (Qbf.make [ (Qbf.Q_exists, [ 1; 1; 2 ]) ] m))

let brute_qbf (qbf : Qbf.t) =
  let n = match qbf.Qbf.matrix with Qbf.M_cnf c -> c.Cnf.nvars | Qbf.M_dnf d -> d.Dnf.nvars in
  let a = Array.make (n + 1) false in
  let order =
    List.concat_map (fun (q, vs) -> List.map (fun v -> (q, v)) vs) qbf.Qbf.prefix
  in
  let holds () =
    match qbf.Qbf.matrix with
    | Qbf.M_cnf c -> Cnf.holds c a
    | Qbf.M_dnf d -> Dnf.holds d a
  in
  let rec go = function
    | [] -> holds ()
    | (Qbf.Q_exists, v) :: rest ->
        a.(v) <- false;
        let l = go rest in
        a.(v) <- true;
        l || go rest
    | (Qbf.Q_forall, v) :: rest ->
        a.(v) <- false;
        let l = go rest in
        a.(v) <- true;
        l && go rest
  in
  go order

let prop_qbf_matches_brute =
  QCheck.Test.make ~name:"QBF solver = brute force" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let qbf = Gen.qbf rng ~nvars:5 ~nclauses:6 in
      Qbf.solve qbf = brute_qbf qbf)

let test_ea_dnf () =
  (* ∃x ∀y ((x ∧ y) ∨ (x ∧ ¬y)) — pick x = 1. *)
  let psi = Dnf.make ~nvars:2 [ [ 1; 2 ]; [ 1; -2 ] ] in
  let inst = Qbf.Ea_dnf.make ~m:1 ~n:1 psi in
  check "solvable" true (Qbf.Ea_dnf.solve inst);
  (match Qbf.Ea_dnf.last_witness inst with
  | Some xa -> check "witness is x=1" true xa.(1)
  | None -> Alcotest.fail "expected witness");
  check_int "one witness" 1 (Qbf.Ea_dnf.count_witnesses inst)

let prop_ea_dnf_forall_y =
  QCheck.Test.make ~name:"∀Y decision via SAT = direct" ~count:80
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let inst = Gen.ea_dnf rng ~m:2 ~n:3 ~nterms:4 in
      Seq.for_all
        (fun xa ->
          let direct =
            Seq.for_all
              (fun ya ->
                let full =
                  Array.init (2 + 3 + 1) (fun v ->
                      if v = 0 then false else if v <= 2 then xa.(v) else ya.(v - 2))
                in
                Dnf.holds inst.Qbf.Ea_dnf.psi full)
              (Cnf.assignments 3)
          in
          Qbf.Ea_dnf.forall_y_holds inst xa = direct)
        (Cnf.assignments 2))

let prop_ea_dnf_solve_consistent =
  QCheck.Test.make ~name:"Ea_dnf.solve = QBF solve = witness existence" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let inst = Gen.ea_dnf rng ~m:3 ~n:2 ~nterms:3 in
      let s = Qbf.Ea_dnf.solve inst in
      s = Option.is_some (Qbf.Ea_dnf.last_witness inst)
      && s = (Qbf.Ea_dnf.count_witnesses inst > 0))

let prop_qbf_negate =
  QCheck.Test.make ~name:"negate flips QBF truth" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let qbf = Gen.qbf rng ~nvars:5 ~nclauses:5 in
      Qbf.solve (Qbf.negate qbf) = not (Qbf.solve qbf)
      && Qbf.solve (Qbf.negate (Qbf.negate qbf)) = Qbf.solve qbf)

let test_pair () =
  let t = Qbf.Ea_dnf.make ~m:1 ~n:1 (Dnf.make ~nvars:2 [ [ 1; 2 ]; [ 1; -2 ] ]) in
  let f = Qbf.Ea_dnf.make ~m:1 ~n:1 (Dnf.make ~nvars:2 [ [ 1; 2 ] ]) in
  check "true-false pair" true (Qbf.Pair.solve { Qbf.Pair.phi1 = t; phi2 = f });
  check "true-true pair" false (Qbf.Pair.solve { Qbf.Pair.phi1 = t; phi2 = t });
  check "false-false pair" false (Qbf.Pair.solve { Qbf.Pair.phi1 = f; phi2 = f })

(* ---------- generators ---------- *)

let test_generators_shapes () =
  let rng = Random.State.make [| 1 |] in
  let c = Gen.cnf3 rng ~nvars:6 ~nclauses:10 in
  check_int "clauses" 10 (List.length c.Cnf.clauses);
  check "three distinct vars" true
    (List.for_all
       (fun cl -> List.length (List.sort_uniq compare (List.map abs cl)) = 3)
       c.Cnf.clauses);
  let d = Gen.dnf3 rng ~nvars:6 ~nterms:4 in
  check_int "terms" 4 (List.length d.Dnf.terms);
  let q = Gen.qbf rng ~nvars:5 ~nclauses:3 in
  check_int "alternating prefix" 5 (List.length q.Qbf.prefix)

let test_generator_determinism () =
  let mk () = Gen.cnf3 (Random.State.make [| 99 |]) ~nvars:5 ~nclauses:5 in
  check "seeded generators deterministic" true (mk () = mk ())

let () =
  Alcotest.run "solvers"
    [
      ( "cnf-dnf",
        [
          Alcotest.test_case "cnf semantics" `Quick test_cnf_semantics;
          Alcotest.test_case "cnf validation" `Quick test_cnf_validation;
          Alcotest.test_case "assignment enumeration" `Quick test_assignments_enumeration;
          Alcotest.test_case "dnf negation (de morgan)" `Quick test_dnf_negation;
        ] );
      ( "sat",
        [
          Alcotest.test_case "known instances" `Quick test_sat_known;
          Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
          QCheck_alcotest.to_alcotest prop_sat_matches_brute;
        ] );
      ( "count",
        [
          Alcotest.test_case "free variables" `Quick test_count_free_vars;
          Alcotest.test_case "trivial formulas" `Quick test_count_trivial;
          Alcotest.test_case "restricted counters" `Quick test_restricted_counters;
          QCheck_alcotest.to_alcotest prop_count_matches_brute;
          QCheck_alcotest.to_alcotest prop_sigma1_brute;
        ] );
      ( "maxsat",
        [
          Alcotest.test_case "known instance" `Quick test_maxsat_known;
          Alcotest.test_case "validation" `Quick test_maxsat_validation;
          QCheck_alcotest.to_alcotest prop_maxsat_matches_brute;
        ] );
      ( "qbf",
        [
          Alcotest.test_case "known instances" `Quick test_qbf_known;
          Alcotest.test_case "validation" `Quick test_qbf_validation;
          Alcotest.test_case "ea-dnf" `Quick test_ea_dnf;
          Alcotest.test_case "pair problem" `Quick test_pair;
          QCheck_alcotest.to_alcotest prop_qbf_matches_brute;
          QCheck_alcotest.to_alcotest prop_qbf_negate;
          QCheck_alcotest.to_alcotest prop_ea_dnf_forall_y;
          QCheck_alcotest.to_alcotest prop_ea_dnf_solve_consistent;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generators_shapes;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
        ] );
    ]
