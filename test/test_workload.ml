(* Tests for the application workloads: the Example 1.1/7.1 travel domain,
   the course-package domain, the expert-team domain and the random
   generators — these double as integration tests of the whole stack
   (parser → evaluator → validity → solvers). *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Database = Relational.Database
open Core
open Workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- travel ---------- *)

let test_travel_dataset () =
  check_int "flights" 10 (Relation.cardinal (Database.find Travel.db "flight"));
  check_int "pois" 8 (Relation.cardinal (Database.find Travel.db "poi"));
  (* the narrative invariant: no direct EDI→NYC on day 1, but EDI→EWR *)
  let direct day dest =
    Relation.cardinal
      (Qlang.Fo_eval.eval_query Travel.db (Travel.direct_flights "edi" dest day))
  in
  check_int "no EDI→NYC day 1" 0 (direct 1 "nyc");
  check_int "EDI→EWR day 1" 1 (direct 1 "ewr");
  check_int "EDI→NYC day 3" 1 (direct 3 "nyc")

let test_travel_items () =
  let q = Travel.flights_upto_one_stop "edi" "nyc" 1 in
  check "UCQ" true (Qlang.Query.language (Qlang.Query.Fo q) = Qlang.Query.L_ucq);
  let it =
    Items.make ~db:Travel.db ~select:(Qlang.Query.Fo q)
      ~utility:Travel.flight_utility ()
  in
  let cands = Items.candidates it in
  (* three one-stop routes (via ams, cdg, lhr), no direct *)
  check_int "three itineraries" 3 (Relation.cardinal cands);
  match Items.topk it ~k:3 with
  | Some (best :: _) ->
      (* cheapest-fastest: via lhr (90+390) beats via ams (120+340)?
         utility = -(2*price + duration): lhr: -(2*480+600) = -1560;
         ams: -(2*460+660) = -1580 → lhr wins *)
      check "best via lhr" true
        (Value.equal (Tuple.get best 0) (Value.Str "FL106"))
  | _ -> Alcotest.fail "expected itineraries"

let test_travel_packages () =
  let inst = Travel.package_instance ~orig:"edi" ~dest:"nyc" ~day:3 () in
  check_int "candidates" 8 (Relation.cardinal (Instance.candidates inst));
  match Frp.enumerate inst ~k:2 with
  | Some ([ best; _ ] as sel) ->
      check "certified" true (Rpp.is_topk inst sel);
      (* compatibility: never more than two museums *)
      let museums p =
        List.length
          (List.filter
             (fun t -> Value.equal (Tuple.get t 3) (Value.Str "museum"))
             (Package.to_list p))
      in
      check "≤ 2 museums" true (List.for_all (fun p -> museums p <= 2) sel);
      (* budget respected *)
      check "within budget" true
        (Rating.eval inst.Instance.cost best <= inst.Instance.budget);
      (* one flight per plan *)
      let flights p =
        List.sort_uniq Value.compare
          (List.map (fun t -> Tuple.get t 0) (Package.to_list p))
      in
      check "one flight" true (List.for_all (fun p -> List.length (flights p) = 1) sel)
  | _ -> Alcotest.fail "expected two plans"

let test_travel_museum_constraint_bites () =
  (* With a generous budget and museum-heavy value, an incompatible package
     would otherwise win: check that 3-museum packages are rejected. *)
  let inst = Travel.package_instance ~budget:2000. ~orig:"edi" ~dest:"nyc" ~day:3 () in
  let three_museums =
    Package.of_tuples
      [
        Tuple.of_list
          [ Value.Str "FL101"; Value.Int 380; Value.Str "MoMA"; Value.Str "museum";
            Value.Int 25; Value.Int 180 ];
        Tuple.of_list
          [ Value.Str "FL101"; Value.Int 380; Value.Str "Met"; Value.Str "museum";
            Value.Int 30; Value.Int 240 ];
        Tuple.of_list
          [ Value.Str "FL101"; Value.Int 380; Value.Str "Guggenheim";
            Value.Str "museum"; Value.Int 25; Value.Int 150 ];
      ]
  in
  check "in Q(D)" true
    (Package.subset_of_relation three_museums (Instance.candidates inst));
  check "rejected by Qc" false (Validity.compatible inst three_museums);
  let two_museums =
    Package.of_tuples (List.filteri (fun i _ -> i < 2) (Package.to_list three_museums))
  in
  check "two museums fine" true (Validity.compatible inst two_museums)

let test_travel_relaxation_scenario () =
  let inst = Travel.package_instance ~orig:"edi" ~dest:"nyc" ~day:1 () in
  check_int "original finds nothing" 0 (Relation.cardinal (Instance.candidates inst));
  let sites =
    [
      { Relax.kind = Relax.Const_site (Value.Str "nyc"); dfun = "city" };
      { Relax.kind = Relax.Const_site (Value.Int 1); dfun = "days" };
    ]
  in
  match Relax.qrpp inst ~sites ~k:1 ~bound:150. ~max_gap:20. with
  | None -> Alcotest.fail "expected a relaxation"
  | Some (r, q') ->
      check "positive gap" true (Relax.gap r > 0.);
      let inst' = Instance.with_select inst (Qlang.Query.Fo q') in
      check "relaxed query has candidates" true
        (Relation.cardinal (Instance.candidates inst') > 0)

let test_travel_random_db () =
  let rng = Random.State.make [| 4 |] in
  let db = Travel.random_db rng ~ncities:5 ~nflights:30 ~npois:20 in
  check_int "flights" 30 (Relation.cardinal (Database.find db "flight"));
  check_int "pois" 20 (Relation.cardinal (Database.find db "poi"));
  (* flights never loop *)
  check "no self loops" true
    (Relation.for_all
       (fun t -> not (Value.equal (Tuple.get t 1) (Tuple.get t 2)))
       (Database.find db "flight"))

(* ---------- courses ---------- *)

let test_course_plans () =
  let inst = Courses.plan_instance ~credit_budget:30. () in
  match Frp.enumerate inst ~k:3 with
  | Some sel ->
      check "certified" true (Rpp.is_topk inst sel);
      (* prerequisite closure: db201 implies db101 etc. *)
      let has p cid =
        List.exists
          (fun t -> Value.equal (Tuple.get t 0) (Value.Str cid))
          (Package.to_list p)
      in
      check "closure" true
        (List.for_all
           (fun p ->
             (not (has p "db201") || has p "db101")
             && (not (has p "db301") || has p "db201")
             && (not (has p "ml201") || (has p "ml101" && has p "th101")))
           sel)
  | None -> Alcotest.fail "expected three plans"

let test_course_fo_vs_fn_constraint () =
  (* Corollary 6.3: FO constraint and the PTIME function agree on all
     packages of the catalog. *)
  let inst_fo = Courses.plan_instance () in
  let inst_fn = { inst_fo with Instance.compat = Courses.prereq_closed_fn } in
  let c = Exist_pack.ctx inst_fo in
  let cands = Exist_pack.candidates c in
  (* sample: all singletons and pairs *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let p = Package.of_tuples [ a; b ] in
          check "constraints agree" (Validity.compatible inst_fo p)
            (Validity.compatible inst_fn p))
        cands)
    cands

let test_course_prereq_violation () =
  let inst = Courses.plan_instance () in
  let course cid =
    Relation.to_list
      (Relation.filter
         (fun t -> Value.equal (Tuple.get t 0) (Value.Str cid))
         (Database.find Courses.db "course"))
  in
  let p = Package.of_tuples (course "db301") in
  check "missing prerequisites rejected" false (Validity.compatible inst p);
  let closed = Package.of_tuples (course "db301" @ course "db201" @ course "db101") in
  check "closed plan accepted" true (Validity.compatible inst closed)

(* ---------- teams ---------- *)

let test_team_conflicts () =
  let inst = Teams.team_instance () in
  let expert eid =
    Relation.to_list
      (Relation.filter
         (fun t -> Value.equal (Tuple.get t 0) (Value.Str eid))
         (Database.find Teams.db "expert"))
  in
  let conflicted = Package.of_tuples (expert "ada" @ expert "alan") in
  check "conflict rejected" false (Validity.compatible inst conflicted);
  let fine = Package.of_tuples (expert "ada" @ expert "barbara") in
  check "no conflict fine" true (Validity.compatible inst fine);
  (* symmetry: the constraint checks both orientations *)
  let conflicted2 = Package.of_tuples (expert "donald" @ expert "grace") in
  check "reverse orientation rejected" false (Validity.compatible inst conflicted2)

let test_team_topk_and_adjustment () =
  let inst = { (Teams.team_instance ()) with Instance.budget = 320. } in
  (match Frp.enumerate inst ~k:1 with
  | Some [ best ] ->
      check "best team below 26" true (Rating.eval inst.Instance.value best < 26.)
  | _ -> Alcotest.fail "expected a team");
  match Adjust.arpp inst ~extra:Teams.candidate_pool ~k:1 ~bound:26. ~max_changes:1 with
  | Some delta ->
      check_int "single change" 1 (Adjust.size delta);
      let inst' = Instance.with_db inst (Adjust.apply inst.Instance.db delta) in
      let c = Exist_pack.ctx inst' in
      check "now achievable" true
        (Option.is_some (Exist_pack.search c ~bound:26. ()))
  | None -> Alcotest.fail "expected an adjustment"

let test_team_sp_query () =
  let q = Teams.experts_with_skill "backend" in
  check "SP" true (Qlang.Fragment.classify_query q = Qlang.Fragment.Sp);
  let a = Core.Special.eval_sp Teams.db q in
  let b = Qlang.Fo_eval.eval_query Teams.db q in
  check "sp scan agrees" true (Relation.equal a b);
  check_int "two backend experts" 2 (Relation.cardinal a)

(* ---------- random generators ---------- *)

let test_random_db_shapes () =
  let rng = Random.State.make [| 9 |] in
  let db = Random_db.database rng ~specs:[ ("A", 2); ("B", 3) ] ~rows:10 ~domain:4 in
  check "A present" true (Database.mem db "A");
  check_int "B arity" 3 (Relation.arity (Database.find db "B"));
  let g = Random_db.graph rng ~nodes:5 ~edges:8 in
  check "graph" true (Relation.cardinal (Database.find g "E") <= 8);
  let cq = Random_db.random_cq rng db ~natoms:3 ~nvars:4 in
  check "random CQ classifies within UCQ" true
    Qlang.Fragment.(leq (Qlang.Fragment.classify_query cq) Ucq)

let test_courses_random_acyclic () =
  let rng = Random.State.make [| 21 |] in
  let db = Courses.random_db rng ~ncourses:10 ~nprereqs:12 in
  (* prerequisite edges point from higher ids to lower: acyclic *)
  let num s = int_of_string (String.sub s 1 (String.length s - 1)) in
  check "acyclic prereqs" true
    (Relation.for_all
       (fun t ->
         num (Value.str_exn (Tuple.get t 0)) > num (Value.str_exn (Tuple.get t 1)))
       (Database.find db "prereq"))

let () =
  Alcotest.run "workload"
    [
      ( "travel",
        [
          Alcotest.test_case "dataset invariants" `Quick test_travel_dataset;
          Alcotest.test_case "item recommendation" `Quick test_travel_items;
          Alcotest.test_case "package recommendation" `Quick test_travel_packages;
          Alcotest.test_case "museum constraint" `Quick test_travel_museum_constraint_bites;
          Alcotest.test_case "relaxation scenario" `Quick test_travel_relaxation_scenario;
          Alcotest.test_case "random generator" `Quick test_travel_random_db;
        ] );
      ( "courses",
        [
          Alcotest.test_case "degree plans" `Quick test_course_plans;
          Alcotest.test_case "FO = PTIME constraint" `Quick test_course_fo_vs_fn_constraint;
          Alcotest.test_case "prerequisite violations" `Quick test_course_prereq_violation;
          Alcotest.test_case "random catalogs acyclic" `Quick test_courses_random_acyclic;
        ] );
      ( "teams",
        [
          Alcotest.test_case "conflict constraint" `Quick test_team_conflicts;
          Alcotest.test_case "top-k and adjustment" `Quick test_team_topk_and_adjustment;
          Alcotest.test_case "SP skill query" `Quick test_team_sp_query;
        ] );
      ( "generators",
        [ Alcotest.test_case "shapes" `Quick test_random_db_shapes ] );
    ]
